package chaos

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// sink collects delivered packets.
type sink struct {
	mu  sync.Mutex
	got []*transport.Packet
}

func (s *sink) deliver(_ int, pkt *transport.Packet) {
	s.mu.Lock()
	s.got = append(s.got, pkt)
	s.mu.Unlock()
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *sink) packets() []*transport.Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*transport.Packet(nil), s.got...)
}

// sendN pushes n distinct frames over the 0->1 link.
func sendN(t *testing.T, f *Fabric, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		pkt := &transport.Packet{Src: 0, Dst: 1, Tag: i, Seq: uint64(i + 1), Payload: []byte{byte(i), byte(i >> 8)}}
		if err := f.Send(pkt); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
}

// TestZeroPlanIsTransparent: an empty plan must not disturb delivery.
func TestZeroPlanIsTransparent(t *testing.T) {
	f := Wrap(transport.NewLocal(), NewPlan(1))
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sendN(t, f, 100)
	if s.count() != 100 {
		t.Fatalf("delivered %d, want 100", s.count())
	}
	for i, pkt := range s.packets() {
		if pkt.Tag != i {
			t.Fatalf("order broken at %d: tag %d", i, pkt.Tag)
		}
	}
	if n := len(f.plan.Log()); n != 0 {
		t.Fatalf("empty plan injected %d faults", n)
	}
}

// TestDeterministicLog: the same plan seed and the same per-link send
// sequence must inject the identical fault sequence — the replayability
// contract.
func TestDeterministicLog(t *testing.T) {
	run := func() []Event {
		plan := NewPlan(42).Default(Rates{Drop: 0.2, Dup: 0.2, Corrupt: 0.2})
		f := Wrap(transport.NewLocal(), plan)
		s := &sink{}
		if err := f.Start(s.deliver); err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sendN(t, f, 200)
		return plan.Log()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fault logs:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("20%% rates over 200 frames injected nothing")
	}
}

// TestDropAccounting: every frame is either delivered or logged dropped.
func TestDropAccounting(t *testing.T) {
	plan := NewPlan(7).Default(Rates{Drop: 0.5})
	f := Wrap(transport.NewLocal(), plan)
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	sendN(t, f, 400)
	_ = f.Close()
	dropped := plan.Count(EvDrop)
	if got := s.count(); got+dropped != 400 {
		t.Fatalf("delivered %d + dropped %d != 400", got, dropped)
	}
	if dropped < 100 || dropped > 300 {
		t.Fatalf("drop rate 0.5 dropped %d of 400 frames", dropped)
	}
}

// TestDuplication: at Dup=1 every frame arrives exactly twice.
func TestDuplication(t *testing.T) {
	plan := NewPlan(3).Default(Rates{Dup: 1})
	f := Wrap(transport.NewLocal(), plan)
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sendN(t, f, 50)
	if got := s.count(); got != 100 {
		t.Fatalf("delivered %d, want 100 (every frame duplicated)", got)
	}
	if n := plan.Count(EvDup); n != 50 {
		t.Fatalf("logged %d dups, want 50", n)
	}
}

// TestCorruptionIsBurstBounded: injected corruption flips payload bits
// (the clone keeps the caller's buffer intact) and is always confined to
// a 32-bit window, so the end-to-end CRC provably catches it.
func TestCorruptionIsBurstBounded(t *testing.T) {
	plan := NewPlan(11).Default(Rates{Corrupt: 1})
	f := Wrap(transport.NewLocal(), plan)
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig := bytes.Repeat([]byte{0x5a}, 64)
	crc := transport.PayloadCrc(orig)
	pkt := &transport.Packet{Src: 0, Dst: 1, Seq: 1, Crc: crc, Payload: append([]byte(nil), orig...)}
	if err := f.Send(pkt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, orig) {
		t.Fatal("corruption mutated the caller's payload instead of a clone")
	}
	got := s.packets()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if bytes.Equal(got[0].Payload, orig) {
		t.Fatal("Corrupt=1 delivered an intact payload")
	}
	if transport.PayloadCrc(got[0].Payload) == crc {
		t.Fatal("corrupted payload passes the end-to-end CRC")
	}
	first, last := -1, -1
	for i := range orig {
		if got[0].Payload[i] != orig[i] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if last-first >= 4 {
		t.Fatalf("corruption spans bytes %d..%d, beyond the 32-bit burst bound", first, last)
	}
}

// TestPartitionWindow: frames inside the scheduled window vanish, frames
// outside pass.
func TestPartitionWindow(t *testing.T) {
	plan := NewPlan(1).Partition(0, 1, 3, 6) // eat frames 3,4,5
	f := Wrap(transport.NewLocal(), plan)
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sendN(t, f, 10)
	if got := s.count(); got != 7 {
		t.Fatalf("delivered %d, want 7 (3 frames partitioned)", got)
	}
	if n := plan.Count(EvPartition); n != 3 {
		t.Fatalf("logged %d partition drops, want 3", n)
	}
	for _, pkt := range s.packets() {
		if pkt.Seq >= 3 && pkt.Seq < 6 {
			t.Fatalf("frame %d escaped the partition", pkt.Seq)
		}
	}
}

// TestReorderSwapsAndFlushes: a held frame is delivered after the link's
// next frame (an adjacent swap — so a mixed rate breaks FIFO), every
// frame still arrives, and a frame held on a quiet link is flushed by the
// timer rather than starved.
func TestReorderSwapsAndFlushes(t *testing.T) {
	const n = 50
	plan := NewPlan(1).Link(0, 1, Rates{Reorder: 0.5})
	f := Wrap(transport.NewLocal(), plan)
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sendN(t, f, n)
	deadline := time.Now().Add(2 * time.Second)
	for s.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d frames delivered: a held frame starved", s.count(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if k := plan.Count(EvReorder); k == 0 {
		t.Fatal("Reorder=0.5 logged no reorder events")
	}
	seen := make(map[uint64]bool)
	inOrder := true
	var prev uint64
	for _, pkt := range s.packets() {
		if seen[pkt.Seq] {
			t.Fatalf("frame %d delivered twice", pkt.Seq)
		}
		seen[pkt.Seq] = true
		if pkt.Seq < prev {
			inOrder = false
		}
		prev = pkt.Seq
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct frames, want %d", len(seen), n)
	}
	if inOrder {
		t.Fatal("Reorder=0.5 over 50 frames delivered strictly in order")
	}
}

// TestDelayJitterDelivers: delayed frames still arrive (after Close waits
// for pending timers).
func TestDelayJitterDelivers(t *testing.T) {
	plan := NewPlan(5).Default(Rates{Delay: 1, Jitter: 2 * time.Millisecond})
	f := Wrap(transport.NewLocal(), plan)
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	sendN(t, f, 20)
	deadline := time.Now().Add(2 * time.Second)
	for s.count() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 20 delayed frames delivered", s.count())
		}
		time.Sleep(time.Millisecond)
	}
	_ = f.Close()
	if n := plan.Count(EvDelay); n != 20 {
		t.Fatalf("logged %d delay events, want 20", n)
	}
}
