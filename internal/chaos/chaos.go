// Package chaos is the adversarial network layer: a composable
// transport.Fabric wrapper that injects faults — frame drop, duplication,
// delay jitter, reordering, payload corruption, and scheduled link
// partitions — from a seeded, deterministic plan.
//
// The paper's methodology (Hursey & Graham 2011, §III) is about keeping
// the ring correct when the substrate misbehaves, but the stock fabrics
// are perfect: the only fault the runtime ever sees is a clean fail-stop
// kill from internal/inject. Wrapping any fabric (Local, Latency, TCP) in
// a chaos Fabric exercises the duplicate-suppression and recovery
// machinery against *actual* lost, duplicated, and mangled frames. The
// reliability sublayer (internal/reliable) is what makes the runtime
// survive it; retry exhaustion there degrades a chaotic link into exactly
// the fail-stop failure model the paper's run-through stabilization
// already handles.
//
// Determinism: every per-frame fate is drawn from a per-link RNG seeded
// from the plan seed and the link's (src, dst), and decisions are made in
// link-local send order. Two runs issuing the same per-link send sequences
// therefore inject the same faults, and the Plan's event log replays them
// (like inject.Plan's log of fired triggers). Delivery *interleaving*
// across links stays as nondeterministic as the wrapped fabric.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Rates configures the per-frame fault probabilities of one link. The
// zero value injects nothing.
type Rates struct {
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Dup is the probability a frame is delivered twice.
	Dup float64
	// Corrupt is the probability of flipping 1–3 payload bits. Frames with
	// empty payloads have no bits to flip and pass unharmed.
	Corrupt float64
	// Reorder is the probability a frame is held back and delivered after
	// the link's next frame (an adjacent swap).
	Reorder float64
	// Delay is the probability a frame is held for a random duration drawn
	// uniformly from (0, Jitter]; a delayed frame may overtake later
	// frames. Ignored unless Jitter > 0.
	Delay float64
	// Jitter bounds the injected delay.
	Jitter time.Duration
}

// active reports whether the rates can inject any fault at all.
func (r Rates) active() bool {
	return r.Drop > 0 || r.Dup > 0 || r.Corrupt > 0 || r.Reorder > 0 || (r.Delay > 0 && r.Jitter > 0)
}

// String renders the rates compactly for logs and experiment tables.
func (r Rates) String() string {
	return fmt.Sprintf("drop=%.3f dup=%.3f corrupt=%.3f reorder=%.3f delay=%.3f/%s",
		r.Drop, r.Dup, r.Corrupt, r.Reorder, r.Delay, r.Jitter)
}

// Partition is a scheduled outage of one directional link: every frame
// whose link-local ordinal (1-based send count on that link) falls in
// [From, To) is discarded. Src or Dst of -1 matches any rank, so
// Partition{Src: -1, Dst: 3, From: 1, To: ^uint64(0)} isolates rank 3's
// inbound side permanently. Frame ordinals rather than wall-clock windows
// keep the schedule deterministic.
type Partition struct {
	Src, Dst int
	From, To uint64
}

// matches reports whether the partition eats the given frame.
func (p Partition) matches(src, dst int, frame uint64) bool {
	if p.Src != -1 && p.Src != src {
		return false
	}
	if p.Dst != -1 && p.Dst != dst {
		return false
	}
	return frame >= p.From && frame < p.To
}

// String renders the partition for logs.
func (p Partition) String() string {
	return fmt.Sprintf("partition %d->%d frames [%d,%d)", p.Src, p.Dst, p.From, p.To)
}

// EventKind classifies one injected fault.
type EventKind int

const (
	// EvDrop is a discarded frame.
	EvDrop EventKind = iota
	// EvDup is a duplicated frame.
	EvDup
	// EvCorrupt is a payload bit flip.
	EvCorrupt
	// EvDelay is an injected delay.
	EvDelay
	// EvReorder is a held-back frame (adjacent swap).
	EvReorder
	// EvPartition is a frame eaten by a scheduled partition.
	EvPartition
)

var eventNames = map[EventKind]string{
	EvDrop: "drop", EvDup: "dup", EvCorrupt: "corrupt",
	EvDelay: "delay", EvReorder: "reorder", EvPartition: "partition",
}

// String returns the event-kind name used in the plan log.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one injected fault, reported to the fabric's observer (the mpi
// world maps these to metrics counters and trace events) and appended to
// the plan's replayable log.
type Event struct {
	Kind  EventKind
	Src   int
	Dst   int
	Seq   uint64 // the packet's reliability sequence number (0 if unsequenced)
	Frame uint64 // link-local send ordinal, 1-based
	// Token is the packet's causal message token (0 if unstamped), so the
	// trace layer's conservation audit can attribute the fault to the
	// message it hit.
	Token uint64
	// Delay is the injected hold time for EvDelay events (zero otherwise),
	// so observers can histogram the jitter actually applied.
	Delay time.Duration
}

// String renders the event in the plan-log form.
func (e Event) String() string {
	return fmt.Sprintf("%s %d->%d frame=%d seq=%d", e.Kind, e.Src, e.Dst, e.Frame, e.Seq)
}

// Plan is a deterministic chaos schedule: a seed, default and per-link
// rates, and scheduled partitions. Configure it before Start; the event
// log accumulates as the run injects faults.
type Plan struct {
	seed  int64
	def   Rates
	links map[[2]int]Rates
	parts []Partition

	mu  sync.Mutex
	log []Event
}

// NewPlan creates an empty plan (which injects nothing) with the given
// RNG seed.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, links: make(map[[2]int]Rates)}
}

// Seed returns the plan's RNG seed.
func (p *Plan) Seed() int64 { return p.seed }

// Default sets the rates applied to every link without an override and
// returns the plan for chaining.
func (p *Plan) Default(r Rates) *Plan {
	p.def = r
	return p
}

// Link overrides the rates of the directional link src -> dst.
func (p *Plan) Link(src, dst int, r Rates) *Plan {
	p.links[[2]int{src, dst}] = r
	return p
}

// Partition schedules an outage; see the Partition type for semantics.
func (p *Plan) Partition(src, dst int, from, to uint64) *Plan {
	p.parts = append(p.parts, Partition{Src: src, Dst: dst, From: from, To: to})
	return p
}

// rates returns the effective rates for a link.
func (p *Plan) rates(src, dst int) Rates {
	if r, ok := p.links[[2]int{src, dst}]; ok {
		return r
	}
	return p.def
}

// record appends an injected fault to the replayable log.
func (p *Plan) record(e Event) {
	p.mu.Lock()
	p.log = append(p.log, e)
	p.mu.Unlock()
}

// Log returns the injected faults so far, in injection order per link.
func (p *Plan) Log() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.log...)
}

// Count returns how many faults of the given kind have been injected.
func (p *Plan) Count(kind EventKind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.log {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String describes the plan's configuration (not its log).
func (p *Plan) String() string {
	s := fmt.Sprintf("chaos(seed=%d default[%s]", p.seed, p.def)
	for k, r := range p.links {
		s += fmt.Sprintf(" %d->%d[%s]", k[0], k[1], r)
	}
	for _, part := range p.parts {
		s += " " + part.String()
	}
	return s + ")"
}

// link holds the per-link fault state: a dedicated RNG (seeded from the
// plan seed and the link endpoints, so fates are independent of cross-link
// interleaving), the frame counter, and the reorder hold slot.
type link struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rates Rates
	sent  uint64
	held  *transport.Packet // at most one frame held back for reordering
}

// Fabric injects the plan's faults into every Send of the wrapped fabric.
// The receive path is untouched: faults happen "on the wire". It does not
// implement transport.NonRetaining — held and delayed frames are cloned,
// but the immediate pass-through path hands the caller's packet to the
// inner fabric unchanged.
type Fabric struct {
	inner transport.Fabric
	plan  *Plan

	// onEvent, if set (before Start), observes every injected fault in
	// addition to the plan log. The mpi world uses it to feed metrics
	// counters and the trace recorder.
	onEvent func(Event)

	mu      sync.Mutex
	links   map[[2]int]*link
	closed  atomic.Bool
	pending sync.WaitGroup // delayed + held-frame flush timers
}

// Wrap builds a chaos fabric injecting plan's faults into inner.
func Wrap(inner transport.Fabric, plan *Plan) *Fabric {
	return &Fabric{inner: inner, plan: plan, links: make(map[[2]int]*link)}
}

// Observe registers a fault observer. Call before Start; the callback
// must not re-enter the fabric.
func (f *Fabric) Observe(fn func(Event)) { f.onEvent = fn }

// Inner returns the wrapped fabric.
func (f *Fabric) Inner() transport.Fabric { return f.inner }

// Start starts the wrapped fabric. Chaos acts only on the send path, so
// the delivery callback passes through untouched.
func (f *Fabric) Start(deliver transport.DeliverFunc) error {
	return f.inner.Start(deliver)
}

// Close stops injecting, waits for in-flight delayed frames, and closes
// the wrapped fabric. Frames still held for reordering are dropped (the
// link died mid-swap).
func (f *Fabric) Close() error {
	f.closed.Store(true)
	f.pending.Wait()
	return f.inner.Close()
}

// linkFor returns (creating on first use) the state of one link.
func (f *Fabric) linkFor(src, dst int) *link {
	key := [2]int{src, dst}
	f.mu.Lock()
	defer f.mu.Unlock()
	l := f.links[key]
	if l == nil {
		seed := f.plan.seed ^ ((int64(src) + 1) << 32) ^ (int64(dst) + 1)
		l = &link{
			rng:   rand.New(rand.NewSource(seed)),
			rates: f.plan.rates(src, dst),
		}
		f.links[key] = l
	}
	return l
}

// emit records an injected fault in the plan log and the observer.
func (f *Fabric) emit(e Event) {
	f.plan.record(e)
	if f.onEvent != nil {
		f.onEvent(e)
	}
}

// Send passes the packet through the fault plan: a scheduled partition or
// a drop fate discards it; corruption clones it and flips payload bits;
// duplication sends a clone twice; delay reschedules it; reordering holds
// it until the link's next frame has gone out. Faults compose (a frame can
// be both corrupted and duplicated). Per the Fabric contract Send never
// reports injected loss as an error — a chaotic network fails silently.
func (f *Fabric) Send(pkt *transport.Packet) error {
	if f.closed.Load() {
		// The link died under the frame: account the loss so the trace
		// audit never sees a send silently vanish at teardown.
		f.emit(Event{Kind: EvDrop, Src: pkt.Src, Dst: pkt.Dst, Seq: pkt.Seq, Token: pkt.Token})
		return nil
	}
	l := f.linkFor(pkt.Src, pkt.Dst)

	l.mu.Lock()
	l.sent++
	frame := l.sent
	prevHeld := l.held
	l.held = nil

	ev := Event{Src: pkt.Src, Dst: pkt.Dst, Seq: pkt.Seq, Frame: frame, Token: pkt.Token}
	for _, part := range f.plan.parts {
		if part.matches(pkt.Src, pkt.Dst, frame) {
			l.mu.Unlock()
			ev.Kind = EvPartition
			f.emit(ev)
			return f.flushHeld(prevHeld)
		}
	}
	if !l.rates.active() {
		l.mu.Unlock()
		if err := f.inner.Send(pkt); err != nil {
			return err
		}
		return f.flushHeld(prevHeld)
	}

	r := l.rates
	drop := l.rng.Float64() < r.Drop
	dup := l.rng.Float64() < r.Dup
	corrupt := l.rng.Float64() < r.Corrupt && len(pkt.Payload) > 0
	reorder := l.rng.Float64() < r.Reorder
	delay := time.Duration(0)
	if r.Jitter > 0 && l.rng.Float64() < r.Delay {
		delay = 1 + time.Duration(l.rng.Int63n(int64(r.Jitter)))
	}
	var flips []int
	if corrupt {
		// Flip 1–3 bits inside one 32-bit window: an error burst of at
		// most 32 bits, which CRC-32C provably detects. Unconstrained
		// random flips would be caught only with probability 1-2^-32; the
		// burst bound turns the soak test's "no corruption above the
		// codec" from overwhelmingly likely into guaranteed.
		bits := len(pkt.Payload) * 8
		base := l.rng.Intn(bits)
		span := bits - base
		if span > 32 {
			span = 32
		}
		for n := 1 + l.rng.Intn(3); n > 0; n-- {
			flips = append(flips, base+l.rng.Intn(span))
		}
	}

	cur := pkt
	if drop {
		l.mu.Unlock()
		ev.Kind = EvDrop
		f.emit(ev)
		return f.flushHeld(prevHeld)
	}
	if corrupt {
		cur = cur.Clone()
		for _, bit := range flips {
			cur.Payload[bit/8] ^= 1 << (bit % 8)
		}
	}
	if reorder && delay == 0 {
		// Hold this frame; it goes out after the link's next frame. A
		// timer flushes it if the link goes quiet, so a held frame delays
		// but never starves (liveness does not depend on retransmits).
		held := cur
		if held == pkt {
			held = pkt.Clone()
		}
		l.held = held
		l.mu.Unlock()
		ev.Kind = EvReorder
		f.emit(ev)
		f.pending.Add(1)
		time.AfterFunc(2*time.Millisecond, func() {
			defer f.pending.Done()
			l.mu.Lock()
			still := l.held == held
			if still {
				l.held = nil
			}
			l.mu.Unlock()
			if still {
				if f.closed.Load() {
					f.emit(Event{Kind: EvDrop, Src: held.Src, Dst: held.Dst, Seq: held.Seq, Token: held.Token})
				} else {
					_ = f.inner.Send(held)
				}
			}
		})
		return f.flushHeld(prevHeld)
	}
	l.mu.Unlock()

	if corrupt {
		ev.Kind = EvCorrupt
		f.emit(ev)
	}
	if delay > 0 {
		ev.Kind = EvDelay
		ev.Delay = delay
		f.emit(ev)
		late := cur
		if late == pkt {
			late = pkt.Clone()
		}
		f.pending.Add(1)
		time.AfterFunc(delay, func() {
			defer f.pending.Done()
			if f.closed.Load() {
				f.emit(Event{Kind: EvDrop, Src: late.Src, Dst: late.Dst, Seq: late.Seq, Token: late.Token})
			} else {
				_ = f.inner.Send(late)
			}
		})
	} else {
		if err := f.inner.Send(cur); err != nil {
			return err
		}
	}
	if dup {
		ev.Kind = EvDup
		f.emit(ev)
		if err := f.inner.Send(cur.Clone()); err != nil {
			return err
		}
	}
	return f.flushHeld(prevHeld)
}

// flushHeld releases a frame that was held for reordering, after the
// current frame has been handled — completing the adjacent swap.
func (f *Fabric) flushHeld(held *transport.Packet) error {
	if held == nil {
		return nil
	}
	if f.closed.Load() {
		f.emit(Event{Kind: EvDrop, Src: held.Src, Dst: held.Dst, Seq: held.Seq, Token: held.Token})
		return nil
	}
	return f.inner.Send(held)
}
