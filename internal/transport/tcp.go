package transport

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Codec selects the wire encoding of the TCP fabric.
type Codec uint8

const (
	// CodecBinary is the length-prefixed binary frame format of codec.go:
	// a fixed 42-byte header written with encoding/binary into pooled
	// buffers, followed by the raw payload. This is the default.
	CodecBinary Codec = iota
	// CodecGob is the original reflection-based gob stream. It is kept as
	// the comparison baseline for the E15 transport experiment.
	CodecGob
)

// String returns a short name for the codec.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// TCP is a loopback-socket fabric: every rank owns a listener on
// 127.0.0.1, and packets are framed over cached connections — binary
// frames by default, gob as a baseline (NewTCPCodec). It drives the exact
// same engine code as the Local fabric through a real network stack, which
// is what the E15 transport experiment compares.
//
// Ordering: one outbound connection exists per destination and frames are
// handed to it in Send order (per-connection writer goroutine for the
// binary codec, per-connection lock for gob), so packets from any given
// source to a destination are FIFO — the ordering the matching engine
// requires.
//
// Concurrency: there is no global send lock. Send touches only the
// per-destination connection state, so sends to distinct destinations
// proceed in parallel. For the binary codec, Send encodes the frame into a
// pooled buffer and enqueues it on the connection's writer, which
// coalesces whatever is queued into one buffered write and flushes
// explicitly once the queue is empty.
type TCP struct {
	n     int
	codec Codec

	started atomic.Bool
	closed  atomic.Bool

	mu        sync.Mutex // guards Start/Close bookkeeping only
	listeners []net.Listener
	conns     []*tcpConn
	deliver   DeliverFunc // written once in Start, before any reader starts

	wg        sync.WaitGroup // accept + read loops
	wgWriters sync.WaitGroup // per-connection write loops

	errMu sync.Mutex
	errs  []error // enriched dial/accept/read failures, see Errors
}

// recordErr remembers an enriched network failure for Errors. Failures
// during or after Close are expected teardown noise and are not recorded.
func (t *TCP) recordErr(err error) {
	if t.closed.Load() {
		return
	}
	t.errMu.Lock()
	t.errs = append(t.errs, err)
	t.errMu.Unlock()
}

// Errors returns the dial/accept/read failures observed so far, each
// wrapped with the rank and address context of the link it occurred on
// (e.g. "dial rank 3 -> rank 5 (127.0.0.1:44321)"). The Fabric contract
// still drops such packets silently — fail-stop is the engine's concern —
// but the enriched errors make post-mortems actionable.
func (t *TCP) Errors() []error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return append([]error(nil), t.errs...)
}

// connState tracks the lifecycle of one outbound connection.
type connState uint8

const (
	connIdle connState = iota // not dialed yet
	connUp                    // dialed, usable
	connDown                  // dial failed or torn down: drop silently
)

type tcpConn struct {
	rank int // destination rank this connection leads to
	addr string

	mu    sync.Mutex
	state connState
	conn  net.Conn
	enc   *gob.Encoder // CodecGob only

	// CodecBinary only: encoded frames travel Send -> writeLoop here.
	frames chan *frameBuf
	done   chan struct{}
}

// NewTCP creates a TCP fabric for n ranks using the binary codec.
// Listeners are created in Start.
func NewTCP(n int) *TCP { return NewTCPCodec(n, CodecBinary) }

// NewTCPCodec creates a TCP fabric with an explicit wire codec.
func NewTCPCodec(n int, codec Codec) *TCP {
	return &TCP{n: n, codec: codec}
}

// NonRetainingSend marks that TCP.Send copies everything it needs (into
// an encoded frame) before returning: callers may immediately reuse or
// release the packet and its payload.
func (t *TCP) NonRetainingSend() {}

// Start opens one loopback listener per rank and begins accepting.
func (t *TCP) Start(deliver DeliverFunc) error {
	if deliver == nil {
		return errors.New("transport: nil delivery callback")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deliver != nil {
		return errors.New("transport: TCP.Start called twice")
	}
	t.deliver = deliver
	t.listeners = make([]net.Listener, t.n)
	t.conns = make([]*tcpConn, t.n)
	for i := 0; i < t.n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				_ = t.listeners[j].Close()
			}
			t.deliver = nil
			return fmt.Errorf("transport: listen for rank %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.conns[i] = &tcpConn{
			rank:   i,
			addr:   ln.Addr().String(),
			frames: make(chan *frameBuf, 256),
			done:   make(chan struct{}),
		}
		t.wg.Add(1)
		go t.acceptLoop(i, ln)
	}
	t.started.Store(true)
	return nil
}

func (t *TCP) acceptLoop(rank int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				t.recordErr(fmt.Errorf("transport: accept for rank %d (%s): %w", rank, ln.Addr(), err))
			}
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(rank, conn)
	}
}

func (t *TCP) readLoop(rank int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	if t.codec == CodecGob {
		dec := gob.NewDecoder(conn)
		for {
			var pkt Packet
			if err := dec.Decode(&pkt); err != nil {
				if err != io.EOF {
					t.recordErr(fmt.Errorf("transport: read for rank %d (%s <- %s): %w",
						rank, conn.LocalAddr(), conn.RemoteAddr(), err))
				}
				return // peer closed or world shut down
			}
			if t.closed.Load() {
				return
			}
			t.deliver(pkt.Dst, &pkt)
		}
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var hdr [FrameHeaderSize]byte
	for {
		pkt, err := ReadFrame(br, hdr[:])
		if err != nil {
			if err != io.EOF {
				t.recordErr(fmt.Errorf("transport: read for rank %d (%s <- %s): %w",
					rank, conn.LocalAddr(), conn.RemoteAddr(), err))
			}
			return // peer closed, world shut down, or corrupt stream
		}
		if t.closed.Load() {
			return
		}
		t.deliver(pkt.Dst, pkt)
	}
}

// Send frames the packet onto the cached connection to pkt.Dst, dialing on
// first use. Sends racing Close, and sends to destinations whose endpoint
// is already torn down (dial failure, broken connection), are dropped
// silently: fail-stop semantics are the engine's concern, and packets to
// dead ranks vanish as a real network would deliver them to a dead
// process.
func (t *TCP) Send(pkt *Packet) error {
	if !t.started.Load() {
		return errors.New("transport: TCP.Send before Start")
	}
	if pkt.Dst < 0 || pkt.Dst >= t.n {
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", pkt.Dst, t.n)
	}
	if t.closed.Load() {
		return nil
	}
	tc := t.conns[pkt.Dst]
	if t.codec == CodecGob {
		return t.sendGob(tc, pkt)
	}
	return t.sendBinary(tc, pkt)
}

func (t *TCP) sendBinary(tc *tcpConn, pkt *Packet) error {
	fb := getFrameBuf()
	b, err := AppendFrame(fb.b, pkt)
	if err != nil {
		putFrameBuf(fb)
		return err // malformed packet: a caller bug, not a network condition
	}
	fb.b = b
	if !tc.ensureDialed(t, pkt.Src) {
		putFrameBuf(fb)
		return nil // torn-down destination or racing Close: silent drop
	}
	select {
	case tc.frames <- fb:
		return nil
	case <-tc.done:
		putFrameBuf(fb)
		return nil // closed while waiting: silent drop
	}
}

func (t *TCP) sendGob(tc *tcpConn, pkt *Packet) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if !tc.dialLocked(t, pkt.Src) {
		return nil
	}
	if err := tc.enc.Encode(pkt); err != nil {
		// The connection was closed under us (Close race) or the peer is
		// gone: mark it down and drop silently per the Fabric contract.
		tc.state = connDown
		_ = tc.conn.Close()
		return nil
	}
	return nil
}

// ensureDialed dials the destination on first use and starts its write
// loop. It reports whether the connection is usable. src is the sending
// rank, used only to contextualize a dial failure.
func (tc *tcpConn) ensureDialed(t *TCP, src int) bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.dialLocked(t, src)
}

// dialLocked transitions connIdle to connUp (or connDown on failure).
// Caller holds tc.mu.
func (tc *tcpConn) dialLocked(t *TCP, src int) bool {
	switch tc.state {
	case connUp:
		return true
	case connDown:
		return false
	}
	conn, err := net.Dial("tcp", tc.addr)
	if err != nil {
		tc.state = connDown
		t.recordErr(fmt.Errorf("transport: dial rank %d -> rank %d (%s): %w", src, tc.rank, tc.addr, err))
		return false
	}
	tc.conn = conn
	tc.state = connUp
	if t.codec == CodecGob {
		tc.enc = gob.NewEncoder(conn)
	} else {
		t.wgWriters.Add(1)
		go t.writeLoop(tc, conn)
	}
	return true
}

// writeLoop drains the frame queue onto the socket. Queued frames are
// coalesced into one buffered write and flushed explicitly once the queue
// is momentarily empty — small ring messages share syscalls without ever
// sitting unflushed.
func (t *TCP) writeLoop(tc *tcpConn, conn net.Conn) {
	defer t.wgWriters.Done()
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		select {
		case <-tc.done:
			t.drainAndFlush(tc, bw)
			return
		case fb := <-tc.frames:
			_, err := bw.Write(fb.b)
			putFrameBuf(fb)
			// Coalesce whatever else is already queued.
			for more := err == nil; more; {
				select {
				case fb := <-tc.frames:
					_, err = bw.Write(fb.b)
					putFrameBuf(fb)
					more = err == nil
				default:
					more = false
				}
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				// Peer torn down: keep consuming frames so senders never
				// block on a dead destination (silent-drop semantics).
				for {
					select {
					case fb := <-tc.frames:
						putFrameBuf(fb)
					case <-tc.done:
						return
					}
				}
			}
		}
	}
}

// drainAndFlush performs the graceful-shutdown write: everything already
// queued is written and flushed (bounded by the write deadline Close set)
// before the writer exits.
func (t *TCP) drainAndFlush(tc *tcpConn, bw *bufio.Writer) {
	for {
		select {
		case fb := <-tc.frames:
			_, _ = bw.Write(fb.b)
			putFrameBuf(fb)
		default:
			_ = bw.Flush()
			return
		}
	}
}

// Close shuts down the fabric: writers drain and flush their queues, then
// listeners and connections are torn down and the accept/read loops are
// awaited. Sends racing Close are dropped silently.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.mu.Lock()
	conns, listeners := t.conns, t.listeners
	t.mu.Unlock()
	// Phase 1: stop the writers gracefully. Readers are still alive, so a
	// final flush cannot block indefinitely; the write deadline bounds the
	// pathological case of a reader that already died.
	for _, tc := range conns {
		if tc == nil {
			continue
		}
		tc.mu.Lock()
		if tc.state == connUp {
			_ = tc.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
		}
		close(tc.done)
		tc.mu.Unlock()
	}
	t.wgWriters.Wait()
	// Phase 2: tear down sockets and wait for the accept/read loops.
	for _, ln := range listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	for _, tc := range conns {
		if tc == nil {
			continue
		}
		tc.mu.Lock()
		if tc.conn != nil {
			_ = tc.conn.Close()
		}
		tc.state = connDown
		tc.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}
