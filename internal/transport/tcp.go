package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// TCP is a loopback-socket fabric: every rank owns a listener on
// 127.0.0.1, and packets are gob-encoded frames over cached connections.
// It drives the exact same engine code as the Local fabric through a real
// network stack, which is what the E15 transport experiment compares.
//
// Ordering: one outbound connection exists per destination, and writes to
// it are serialized, so packets from any given source to a destination are
// FIFO — the ordering the matching engine requires.
type TCP struct {
	n int

	mu        sync.Mutex
	listeners []net.Listener
	addrs     []string
	conns     map[int]*tcpConn
	deliver   DeliverFunc
	closed    bool
	wg        sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewTCP creates a TCP fabric for n ranks. Listeners are created in Start.
func NewTCP(n int) *TCP {
	return &TCP{n: n, conns: make(map[int]*tcpConn)}
}

// Start opens one loopback listener per rank and begins accepting.
func (t *TCP) Start(deliver DeliverFunc) error {
	if deliver == nil {
		return errors.New("transport: nil delivery callback")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deliver != nil {
		return errors.New("transport: TCP.Start called twice")
	}
	t.deliver = deliver
	t.listeners = make([]net.Listener, t.n)
	t.addrs = make([]string, t.n)
	for i := 0; i < t.n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				_ = t.listeners[j].Close()
			}
			return fmt.Errorf("transport: listen for rank %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(ln)
	}
	return nil
}

func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var pkt Packet
		if err := dec.Decode(&pkt); err != nil {
			return // peer closed or world shut down
		}
		t.mu.Lock()
		deliver := t.deliver
		closed := t.closed
		t.mu.Unlock()
		if closed || deliver == nil {
			return
		}
		deliver(pkt.Dst, &pkt)
	}
}

// Send encodes the packet onto the cached connection to pkt.Dst, dialing
// on first use.
func (t *TCP) Send(pkt *Packet) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	if t.deliver == nil {
		t.mu.Unlock()
		return errors.New("transport: TCP.Send before Start")
	}
	if pkt.Dst < 0 || pkt.Dst >= t.n {
		t.mu.Unlock()
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", pkt.Dst, t.n)
	}
	tc, ok := t.conns[pkt.Dst]
	if !ok {
		conn, err := net.Dial("tcp", t.addrs[pkt.Dst])
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("transport: dial rank %d: %w", pkt.Dst, err)
		}
		tc = &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
		t.conns[pkt.Dst] = tc
	}
	t.mu.Unlock()

	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := tc.enc.Encode(pkt); err != nil {
		return fmt.Errorf("transport: send to rank %d: %w", pkt.Dst, err)
	}
	return nil
}

// Close shuts down all listeners and connections and waits for the accept
// and read loops to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	for _, tc := range t.conns {
		_ = tc.conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
