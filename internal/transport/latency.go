package transport

import (
	"errors"
	"sync"
	"time"
)

// Latency wraps another fabric and delays every packet by a configurable
// per-hop duration while preserving FIFO order per (src, dst) pair. It
// models interconnect latency for the quantitative experiments without
// perturbing matching semantics: each ordered pair gets a dedicated
// forwarding queue drained by one goroutine.
//
// The model is a pipelined link: every packet is stamped with a deadline
// (enqueue time + delay) when Send accepts it, and the forwarder sleeps
// only until that deadline. N back-to-back packets therefore arrive ~delay
// after their own sends, not N×delay after the first — while channel order
// keeps the pair FIFO even when a later packet's deadline lands earlier
// (size-dependent delay functions).
type Latency struct {
	inner  Fabric
	delay  func(pkt *Packet) time.Duration
	pooled bool // inner is NonRetaining: clones can use pooled payloads

	mu     sync.Mutex
	queues map[[2]int]*latQueue
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// latQueue is the forwarding state of one (src, dst) pair. pending counts
// packets accepted by Send but not yet handed to the inner fabric
// (queued, sleeping, or mid-forward); it is guarded by Latency.mu.
type latQueue struct {
	ch      chan timedPacket
	pending int
}

// timedPacket carries a cloned packet and its delivery deadline.
type timedPacket struct {
	pkt *Packet
	due time.Time
}

// NewLatency wraps inner with a constant per-packet delay.
func NewLatency(inner Fabric, d time.Duration) *Latency {
	return NewLatencyFunc(inner, func(*Packet) time.Duration { return d })
}

// NewLatencyFunc wraps inner with a per-packet delay function, allowing
// size-dependent models (e.g. alpha-beta: latency + bytes/bandwidth).
func NewLatencyFunc(inner Fabric, delay func(pkt *Packet) time.Duration) *Latency {
	_, pooled := inner.(NonRetaining)
	return &Latency{
		inner:  inner,
		delay:  delay,
		pooled: pooled,
		queues: make(map[[2]int]*latQueue),
		done:   make(chan struct{}),
	}
}

// Start starts the inner fabric.
func (l *Latency) Start(deliver DeliverFunc) error {
	return l.inner.Start(deliver)
}

// Send enqueues the packet on the (src,dst) forwarding queue with a
// deadline of now+delay; a per-pair goroutine sleeps until each deadline
// and forwards to the inner fabric, so packets between the same pair never
// reorder. A zero-delay packet may bypass the queue only when nothing for
// its pair is queued or in flight — otherwise it would overtake earlier
// delayed packets and break the FIFO guarantee the matching engine
// requires.
func (l *Latency) Send(pkt *Packet) error {
	d := l.delay(pkt)
	key := [2]int{pkt.Src, pkt.Dst}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	q := l.queues[key]
	if d <= 0 && (q == nil || q.pending == 0) {
		l.mu.Unlock()
		return l.inner.Send(pkt)
	}
	if q == nil {
		q = &latQueue{ch: make(chan timedPacket, 1024)}
		l.queues[key] = q
		l.wg.Add(1)
		go l.forward(q)
	}
	var clone *Packet
	if l.pooled {
		clone = pkt.ClonePooled()
	} else {
		clone = pkt.Clone()
	}
	q.pending++
	l.mu.Unlock()
	tp := timedPacket{pkt: clone, due: time.Now().Add(d)}
	select {
	case q.ch <- tp:
		return nil
	case <-l.done:
		l.release(q, clone)
		return nil
	default:
		l.release(q, clone)
		return errors.New("transport: latency queue overflow")
	}
}

// release undoes the bookkeeping of an accepted-then-dropped packet.
func (l *Latency) release(q *latQueue, clone *Packet) {
	l.mu.Lock()
	q.pending--
	l.mu.Unlock()
	if l.pooled {
		clone.ReleasePayload()
	}
}

func (l *Latency) forward(q *latQueue) {
	defer l.wg.Done()
	for {
		var tp timedPacket
		select {
		case tp = <-q.ch:
		case <-l.done:
			// Drain what was accepted before Close, still honouring the
			// (mostly already-expired) deadlines, then exit.
			select {
			case tp = <-q.ch:
			default:
				return
			}
		}
		if d := time.Until(tp.due); d > 0 {
			time.Sleep(d)
		}
		_ = l.inner.Send(tp.pkt)
		if l.pooled {
			tp.pkt.ReleasePayload()
		}
		l.mu.Lock()
		q.pending--
		l.mu.Unlock()
	}
}

// Close drains the forwarding queues, stops the per-pair goroutines, then
// closes the inner fabric.
func (l *Latency) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	l.mu.Unlock()
	l.wg.Wait()
	return l.inner.Close()
}
