package transport

import (
	"errors"
	"sync"
	"time"
)

// Latency wraps another fabric and delays every packet by a configurable
// per-hop duration while preserving FIFO order per (src, dst) pair. It
// models interconnect latency for the quantitative experiments without
// perturbing matching semantics: each ordered pair gets a dedicated
// forwarding queue drained by one goroutine.
type Latency struct {
	inner Fabric
	delay func(pkt *Packet) time.Duration

	mu     sync.Mutex
	queues map[[2]int]chan *Packet
	wg     sync.WaitGroup
	closed bool
}

// NewLatency wraps inner with a constant per-packet delay.
func NewLatency(inner Fabric, d time.Duration) *Latency {
	return NewLatencyFunc(inner, func(*Packet) time.Duration { return d })
}

// NewLatencyFunc wraps inner with a per-packet delay function, allowing
// size-dependent models (e.g. alpha-beta: latency + bytes/bandwidth).
func NewLatencyFunc(inner Fabric, delay func(pkt *Packet) time.Duration) *Latency {
	return &Latency{
		inner:  inner,
		delay:  delay,
		queues: make(map[[2]int]chan *Packet),
	}
}

// Start starts the inner fabric.
func (l *Latency) Start(deliver DeliverFunc) error {
	return l.inner.Start(deliver)
}

// Send enqueues the packet on the (src,dst) forwarding queue; a per-pair
// goroutine applies the delay and forwards to the inner fabric, so packets
// between the same pair never reorder.
func (l *Latency) Send(pkt *Packet) error {
	d := l.delay(pkt)
	if d <= 0 {
		return l.inner.Send(pkt)
	}
	key := [2]int{pkt.Src, pkt.Dst}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	q, ok := l.queues[key]
	if !ok {
		q = make(chan *Packet, 1024)
		l.queues[key] = q
		l.wg.Add(1)
		go l.forward(q)
	}
	l.mu.Unlock()
	select {
	case q <- pkt.Clone():
		return nil
	default:
		return errors.New("transport: latency queue overflow")
	}
}

func (l *Latency) forward(q chan *Packet) {
	defer l.wg.Done()
	for pkt := range q {
		time.Sleep(l.delay(pkt))
		_ = l.inner.Send(pkt)
	}
}

// Close drains and closes all forwarding queues, then closes the inner
// fabric.
func (l *Latency) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for _, q := range l.queues {
		close(q)
	}
	l.mu.Unlock()
	l.wg.Wait()
	return l.inner.Close()
}
