package transport

import (
	"errors"
	"sync"
)

// Local is an in-memory fabric: Send invokes the delivery callback
// directly on the sender's goroutine. Delivery is therefore synchronous
// and FIFO per sender trivially. This mirrors an eager shared-memory BTL:
// once Send returns, the packet is queued at the destination, so packets
// sent by a rank before it is killed remain deliverable — the property the
// paper's Figure 8 duplicate-message race depends on.
//
// Local intentionally does not implement NonRetaining: the packet pointer
// is handed to the destination engine, which may hold the payload on its
// unexpected-message queue indefinitely, so callers must not reuse or
// pool-release a payload after Send.
type Local struct {
	mu      sync.RWMutex
	deliver DeliverFunc
	closed  bool
}

// NewLocal creates an in-memory fabric.
func NewLocal() *Local { return &Local{} }

// Start records the delivery callback.
func (l *Local) Start(deliver DeliverFunc) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.deliver != nil {
		return errors.New("transport: Local.Start called twice")
	}
	if deliver == nil {
		return errors.New("transport: nil delivery callback")
	}
	l.deliver = deliver
	return nil
}

// Send delivers the packet synchronously.
func (l *Local) Send(pkt *Packet) error {
	l.mu.RLock()
	deliver := l.deliver
	closed := l.closed
	l.mu.RUnlock()
	if closed {
		return nil // packets into a torn-down world vanish, like the network
	}
	if deliver == nil {
		return errors.New("transport: Local.Send before Start")
	}
	deliver(pkt.Dst, pkt)
	return nil
}

// Close marks the fabric closed; subsequent sends are dropped.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}
