// Package transport carries packets between ranks.
//
// The MPI engine (internal/mpi) is transport-agnostic: it hands fully
// addressed packets to a Fabric and receives inbound packets through a
// delivery callback. Two fabrics are provided:
//
//   - Local: direct in-memory delivery (a function call into the
//     destination engine). This is the default and is what the
//     deterministic paper-scenario tests use.
//   - TCP: real loopback sockets, one listener per rank. It exercises the
//     same engine code over an actual network stack and backs the E15
//     transport-comparison experiment. Packets travel as length-prefixed
//     binary frames: a fixed 74-byte little-endian header (magic,
//     version, kind, src, dst, tag, context, srcgen, dstgen, seq,
//     payload crc, repseq, repepoch, hlc, token, payload
//     length, frame crc — see codec.go) followed by the raw payload,
//     encoded with encoding/binary
//     into sync.Pool-backed buffers so the steady-state send path does
//     not allocate. The original reflection-based gob stream remains
//     available via NewTCPCodec(n, CodecGob) as the E15 baseline.
//
// Both fabrics preserve FIFO ordering per (source, destination) pair, the
// ordering MPI guarantees per (source, tag, communicator). A Latency
// wrapper adds a configurable per-hop delay while preserving that order;
// it models a pipelined link (deadline per packet, not a serial sleep per
// packet).
//
// Buffer ownership: a fabric that implements NonRetaining promises its
// Send copies everything it needs before returning, so callers (and
// buffering wrappers like Latency) may reuse or pool-release payloads the
// moment Send returns. Local deliberately does NOT implement it — it
// hands the packet pointer straight to the destination engine, which may
// queue the payload indefinitely.
package transport

import "fmt"

// Kind classifies a packet for routing inside the destination engine.
type Kind uint8

const (
	// KindData is ordinary point-to-point traffic subject to MPI matching.
	KindData Kind = iota
	// KindAgreement is internal traffic for the fault-tolerant agreement
	// service behind MPI_Comm_validate_all. It bypasses user-level
	// matching and is routed to the per-rank agreement service.
	KindAgreement
	// KindAck is reliability-sublayer control traffic: a receiver
	// acknowledging Packet.Seq on the (Dst, Src) link. Ack packets carry no
	// payload, are never acknowledged themselves, and are consumed by the
	// reliability fabric before packets reach the engine.
	KindAck
	// KindControl is failure-detection control traffic (heartbeat pings
	// and acks, fence notices and acks). The operation travels in Tag and
	// the heartbeat sequence in Seq; the payload is empty. Control frames
	// bypass the reliability sublayer entirely — they ARE the liveness
	// signal, so retransmitting them would defeat their purpose — and are
	// routed to the per-rank heartbeat monitor, not the matching engine.
	KindControl
	// KindState is elastic-world state-recovery traffic: a respawned rank
	// requesting (and a survivor serving) an application state snapshot
	// registered via Proc.SetStateProvider. The request id travels in Tag;
	// replies carry the snapshot as payload. State frames bypass user-level
	// matching and are answered reactively at delivery.
	KindState
	// KindChainAck is replication chain-mode receipt confirmation: a
	// replica (primary or standby) telling the ORIGINAL sender that it
	// holds the data frame identified by (Context, Tag, RepSeq) on the
	// logical channel to the receiver's replica group. The sender retires
	// the matching chain-outbox entry once every live group member has
	// confirmed; until then a primary death triggers a re-send to the
	// promoted survivor. Chain-acks carry no payload and travel through
	// the reliability sublayer like data (they must survive chaos), but
	// bypass user-level matching.
	KindChainAck
)

// String returns a short name for the packet kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAgreement:
		return "agreement"
	case KindAck:
		return "ack"
	case KindControl:
		return "control"
	case KindState:
		return "state"
	case KindChainAck:
		return "chainack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is one message on the wire. Ranks are world ranks; Context
// identifies the communicator context (point-to-point and internal
// contexts are distinct, as in MPI implementations).
//
// SrcGen and DstGen carry generation stamps for elastic worlds: the
// incarnation of the sending slot and the incarnation of the destination
// slot the sender believed it was addressing. A receiving engine rejects
// frames whose stamps do not match the current incarnations (stale
// generations), so traffic addressed to — or originated by — a dead
// incarnation can never be matched by its reincarnation. Zero means
// "unstamped" and is accepted, preserving compatibility with tooling that
// crafts packets by hand.
type Packet struct {
	Src     int
	Dst     int
	Tag     int
	Context int
	Kind    Kind
	SrcGen  uint32 // generation of the sending incarnation (0 = unstamped)
	DstGen  uint32 // generation of the intended destination incarnation (0 = unstamped)
	Seq     uint64 // per-(src,dst) sequence number, assigned by the reliability sublayer
	Crc     uint32 // end-to-end CRC-32C of Payload (0 = unchecked); see PayloadCrc
	// RepSeq is the replication-mode logical-channel sequence number,
	// stamped identically by every sender replica on each data message of a
	// (logical dst, context, tag) channel so receivers can drop the fan-out
	// duplicates. 0 means "unstamped" (non-replicated traffic).
	RepSeq uint32
	// RepEpoch is the sender's replica-group epoch at stamp time. It is
	// diagnostic only: dedup is by RepSeq alone, because a promoted survivor
	// continues the old sequence numbering under the new epoch.
	RepEpoch uint32
	// HLC is the sender's hybrid-logical-clock stamp at send time
	// (internal/trace.HLC encoding: physical µs << 12 | logical). The
	// receiving engine merges it into its own clock, so deliver stamps are
	// numerically after send stamps without synchronized clocks. 0 means
	// "unstamped".
	HLC uint64
	// Token is the causal message identity: origin physical rank << 48 |
	// per-origin sequence, assigned ONCE where a data message enters the
	// runtime and preserved verbatim across retransmits, replication
	// fan-out copies and chain forwards — every trace event on any rank
	// that touches this message carries the same token. 0 means
	// "untracked" (control/ack/agreement/state traffic).
	Token   uint64
	Payload []byte
}

// TokenBits is the per-origin sequence width of Packet.Token; the origin
// physical rank occupies the bits above it.
const TokenBits = 48

// MakeToken composes a causal token from an origin rank and sequence.
func MakeToken(origin int, seq uint64) uint64 {
	return uint64(origin)<<TokenBits | seq&(1<<TokenBits-1)
}

// TokenOrigin extracts the origin physical rank of a causal token.
func TokenOrigin(tok uint64) int { return int(tok >> TokenBits) }

// TokenSeq extracts the per-origin sequence of a causal token.
func TokenSeq(tok uint64) uint64 { return tok & (1<<TokenBits - 1) }

// Clone returns a deep copy of the packet. Fabrics that buffer packets
// (latency, TCP) use it so callers may reuse payload buffers.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return &q
}

// String renders the packet header for traces and debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%d->%d tag=%d ctx=%d kind=%s len=%d}",
		p.Src, p.Dst, p.Tag, p.Context, p.Kind, len(p.Payload))
}

// DeliverFunc is invoked by a fabric on arrival of a packet for rank dst.
// It runs on a fabric-owned goroutine (or the sender's goroutine for the
// Local fabric) and must not block indefinitely.
type DeliverFunc func(dst int, pkt *Packet)

// NonRetaining marks a Fabric whose Send copies everything it needs
// (headers and payload) before returning. Callers may immediately reuse
// the packet and its payload, and buffering wrappers may clone through
// the payload pool (Packet.ClonePooled) and release the clone as soon as
// the inner Send returns. TCP implements it: the frame is fully encoded
// inside Send. Local does not: it delivers the packet pointer into the
// destination engine, which retains the payload.
type NonRetaining interface {
	// NonRetainingSend is a marker method; it performs no action.
	NonRetainingSend()
}

// Fabric moves packets between ranks.
type Fabric interface {
	// Start wires the delivery callback. It must be called exactly once,
	// before the first Send.
	Start(deliver DeliverFunc) error
	// Send transmits the packet to pkt.Dst. Sending to a rank whose
	// endpoint has been torn down is not an error: fail-stop semantics are
	// the engine's concern, and packets to dead ranks are dropped silently
	// (as a real network would deliver them to a dead process).
	Send(pkt *Packet) error
	// Close releases fabric resources. Sends after Close are dropped.
	Close() error
}
