package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector gathers delivered packets per destination.
type collector struct {
	mu   sync.Mutex
	got  map[int][]*Packet
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{got: map[int][]*Packet{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) deliver(dst int, pkt *Packet) {
	c.mu.Lock()
	c.got[dst] = append(c.got[dst], pkt)
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *collector) waitFor(dst, n int, timeout time.Duration) []*Packet {
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got[dst]) < n {
		if time.Now().After(deadline) {
			return c.got[dst]
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
		c.mu.Lock()
	}
	return append([]*Packet(nil), c.got[dst]...)
}

func testFabricBasics(t *testing.T, f Fabric) {
	t.Helper()
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer f.Close()
	const n = 50
	for i := 0; i < n; i++ {
		err := f.Send(&Packet{Src: 0, Dst: 1, Tag: i, Context: 7, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := col.waitFor(1, n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	for i, pkt := range got {
		if pkt.Tag != i || pkt.Payload[0] != byte(i) {
			t.Fatalf("packet %d out of order or corrupted: %+v", i, pkt)
		}
		if pkt.Src != 0 || pkt.Dst != 1 || pkt.Context != 7 {
			t.Fatalf("header corrupted: %+v", pkt)
		}
	}
}

func TestLocalFabricFIFO(t *testing.T) { testFabricBasics(t, NewLocal()) }

func TestTCPFabricFIFO(t *testing.T) { testFabricBasics(t, NewTCP(2)) }

func TestTCPFabricFIFOGob(t *testing.T) { testFabricBasics(t, NewTCPCodec(2, CodecGob)) }

func TestLatencyFabricPreservesOrder(t *testing.T) {
	testFabricBasics(t, NewLatency(NewLocal(), 100*time.Microsecond))
}

func TestLocalStartTwiceFails(t *testing.T) {
	f := NewLocal()
	if err := f.Start(func(int, *Packet) {}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(func(int, *Packet) {}); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestSendBeforeStartFails(t *testing.T) {
	if err := NewLocal().Send(&Packet{}); err == nil {
		t.Fatal("send before start should fail")
	}
}

func TestSendAfterCloseIsDropped(t *testing.T) {
	f := NewLocal()
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(&Packet{Dst: 0}); err != nil {
		t.Fatalf("post-close send must be silently dropped, got %v", err)
	}
	if got := col.waitFor(0, 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("packet delivered after close: %v", got)
	}
}

func TestTCPCrossTraffic(t *testing.T) { runTCPCrossTraffic(t, NewTCP(4)) }

func runTCPCrossTraffic(t *testing.T, f *TCP) {
	t.Helper()
	const ranks = 4
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	for src := 0; src < ranks; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				dst := (src + 1 + i) % ranks
				if err := f.Send(&Packet{Src: src, Dst: dst, Tag: i}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	total := 0
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		total = 0
		col.mu.Lock()
		for _, pkts := range col.got {
			total += len(pkts)
		}
		col.mu.Unlock()
		if total == ranks*20 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if total != ranks*20 {
		t.Fatalf("delivered %d packets, want %d", total, ranks*20)
	}
}

func TestTCPOutOfRangeDestination(t *testing.T) {
	f := NewTCP(2)
	if err := f.Start(func(int, *Packet) {}); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Send(&Packet{Dst: 5}); err == nil {
		t.Fatal("out-of-range destination should error")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Tag: 3, Payload: []byte{9}}
	q := p.Clone()
	q.Payload[0] = 7
	if p.Payload[0] != 9 {
		t.Fatal("clone shares payload storage")
	}
	if q.Src != 1 || q.Dst != 2 || q.Tag != 3 {
		t.Fatalf("clone header %+v", q)
	}
}

func TestLatencyActuallyDelays(t *testing.T) {
	const delay = 30 * time.Millisecond
	f := NewLatency(NewLocal(), delay)
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Send(&Packet{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	got := col.waitFor(1, 1, 5*time.Second)
	if len(got) != 1 {
		t.Fatal("packet lost")
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delivered after %v, want >= %v", elapsed, delay)
	}
}

// TestLatencyFIFOMixedDelays is the FIFO property test for size/shape-
// dependent delay functions: zero-delay packets must not overtake earlier
// delayed packets from the same (src,dst) pair. Against the old fast path
// (d <= 0 always bypassed the queue) this fails immediately — the even
// packets land while the odd ones are still sleeping.
func TestLatencyFIFOMixedDelays(t *testing.T) {
	f := NewLatencyFunc(NewLocal(), func(p *Packet) time.Duration {
		if p.Tag%2 == 1 {
			return 3 * time.Millisecond
		}
		return 0
	})
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if err := f.Send(&Packet{Src: 0, Dst: 1, Tag: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := col.waitFor(1, n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	for i, pkt := range got {
		if pkt.Tag != i {
			t.Fatalf("FIFO violated: position %d holds tag %d (order %v...)",
				i, pkt.Tag, tags(got[:i+1]))
		}
	}
}

func tags(pkts []*Packet) []int {
	out := make([]int, len(pkts))
	for i, p := range pkts {
		out[i] = p.Tag
	}
	return out
}

// TestLatencyPipelinesDelay: N queued packets model a pipelined link
// (each arrives ~delay after its own send), not a serial one (N×delay
// total). The old forwarder slept the full delay per packet, so 8 packets
// at 25ms took ~200ms; the deadline-stamped forwarder takes ~25ms.
func TestLatencyPipelinesDelay(t *testing.T) {
	const delay = 25 * time.Millisecond
	const n = 8
	f := NewLatency(NewLocal(), delay)
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f.Send(&Packet{Src: 0, Dst: 1, Tag: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := col.waitFor(1, n, 5*time.Second)
	elapsed := time.Since(start)
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	if elapsed < delay {
		t.Fatalf("delivered in %v, faster than one hop delay %v", elapsed, delay)
	}
	// Serial forwarding would need n*delay = 200ms; allow generous
	// scheduling slack while still rejecting the serial model.
	if limit := time.Duration(n) * delay / 2; elapsed > limit {
		t.Fatalf("delivered in %v, want pipelined (< %v; serial would be %v)",
			elapsed, limit, time.Duration(n)*delay)
	}
	for i, pkt := range got {
		if pkt.Tag != i {
			t.Fatalf("pipelining broke FIFO at %d: %v", i, tags(got))
		}
	}
}

// TestTCPSendCloseRace hammers Send from several goroutines while Close
// runs: per the Fabric contract every racing send must be silently
// dropped (nil error), never surface an encode/write error on the closed
// connection. Run under -race.
func TestTCPSendCloseRace(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			f := NewTCPCodec(4, codec)
			col := newCollector()
			if err := f.Start(col.deliver); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						pkt := &Packet{Src: g, Dst: (g + 1) % 4, Tag: i, Payload: []byte{byte(i)}}
						if err := f.Send(pkt); err != nil {
							t.Errorf("send racing close must be dropped silently, got: %v", err)
							return
						}
					}
				}(g)
			}
			time.Sleep(5 * time.Millisecond)
			if err := f.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			close(stop)
			wg.Wait()
			// Sends after Close must keep being silent no-ops.
			if err := f.Send(&Packet{Src: 0, Dst: 1}); err != nil {
				t.Fatalf("post-close send: %v", err)
			}
		})
	}
}

// TestTCPCrossTrafficBothCodecs reruns the concurrent cross-traffic test
// over each codec (the FIFO + delivery property under contention).
func TestTCPCrossTrafficBothCodecs(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			runTCPCrossTraffic(t, NewTCPCodec(4, codec))
		})
	}
}

// BenchmarkTCPFabricThroughput pumps packets through a 2-rank TCP fabric
// and waits for delivery — the raw wire-path comparison between the gob
// baseline and the pooled binary codec (E15's transport half, without the
// ring engine on top).
func BenchmarkTCPFabricThroughput(b *testing.B) {
	for _, codec := range []Codec{CodecGob, CodecBinary} {
		b.Run(codec.String(), func(b *testing.B) {
			f := NewTCPCodec(2, codec)
			var delivered atomic.Int64
			if err := f.Start(func(int, *Packet) { delivered.Add(1) }); err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			payload := make([]byte, 1024)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Send(&Packet{Src: 0, Dst: 1, Tag: i, Payload: payload}); err != nil {
					b.Fatal(err)
				}
			}
			for delivered.Load() < int64(b.N) {
				time.Sleep(50 * time.Microsecond)
			}
		})
	}
}

// TestTCPDialErrorEnriched forces a dial failure (the destination's
// listener is closed before the first send) and asserts the recorded error
// carries rank and address context, not a bare net error.
func TestTCPDialErrorEnriched(t *testing.T) {
	f := NewTCP(2)
	if err := f.Start(func(int, *Packet) {}); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Tear down rank 1's listener so dialing it is refused.
	addr := f.conns[1].addr
	if err := f.listeners[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(&Packet{Src: 0, Dst: 1, Payload: []byte("x")}); err != nil {
		t.Fatalf("send to torn-down rank must drop silently, got %v", err)
	}
	errs := f.Errors()
	if len(errs) != 1 {
		t.Fatalf("recorded %d errors, want 1: %v", len(errs), errs)
	}
	msg := errs[0].Error()
	want := fmt.Sprintf("dial rank 0 -> rank 1 (%s)", addr)
	if !strings.Contains(msg, want) {
		t.Fatalf("error %q lacks link context %q", msg, want)
	}
}

// TestTCPReadErrorEnriched writes garbage into a rank's listener and
// asserts the resulting decode failure is recorded with the receiving
// rank's context and wraps ErrFrameCorrupt.
func TestTCPReadErrorEnriched(t *testing.T) {
	f := NewTCP(2)
	if err := f.Start(func(int, *Packet) {}); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	conn, err := net.Dial("tcp", f.conns[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xa5}, FrameHeaderSize)
	if _, err := conn.Write(junk); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if errs := f.Errors(); len(errs) > 0 {
			msg := errs[0].Error()
			if !strings.Contains(msg, "read for rank 1 (") {
				t.Fatalf("error %q lacks rank context", msg)
			}
			if !errors.Is(errs[0], ErrFrameCorrupt) {
				t.Fatalf("error %v does not wrap ErrFrameCorrupt", errs[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("read error never recorded")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindAgreement.String() != "agreement" {
		t.Fatal("kind names changed")
	}
	if s := fmt.Sprint(Kind(99)); s == "" {
		t.Fatal("unknown kind should still render")
	}
}
