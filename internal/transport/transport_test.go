package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered packets per destination.
type collector struct {
	mu   sync.Mutex
	got  map[int][]*Packet
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{got: map[int][]*Packet{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) deliver(dst int, pkt *Packet) {
	c.mu.Lock()
	c.got[dst] = append(c.got[dst], pkt)
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *collector) waitFor(dst, n int, timeout time.Duration) []*Packet {
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got[dst]) < n {
		if time.Now().After(deadline) {
			return c.got[dst]
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
		c.mu.Lock()
	}
	return append([]*Packet(nil), c.got[dst]...)
}

func testFabricBasics(t *testing.T, f Fabric) {
	t.Helper()
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer f.Close()
	const n = 50
	for i := 0; i < n; i++ {
		err := f.Send(&Packet{Src: 0, Dst: 1, Tag: i, Context: 7, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := col.waitFor(1, n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	for i, pkt := range got {
		if pkt.Tag != i || pkt.Payload[0] != byte(i) {
			t.Fatalf("packet %d out of order or corrupted: %+v", i, pkt)
		}
		if pkt.Src != 0 || pkt.Dst != 1 || pkt.Context != 7 {
			t.Fatalf("header corrupted: %+v", pkt)
		}
	}
}

func TestLocalFabricFIFO(t *testing.T) { testFabricBasics(t, NewLocal()) }

func TestTCPFabricFIFO(t *testing.T) { testFabricBasics(t, NewTCP(2)) }

func TestLatencyFabricPreservesOrder(t *testing.T) {
	testFabricBasics(t, NewLatency(NewLocal(), 100*time.Microsecond))
}

func TestLocalStartTwiceFails(t *testing.T) {
	f := NewLocal()
	if err := f.Start(func(int, *Packet) {}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(func(int, *Packet) {}); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestSendBeforeStartFails(t *testing.T) {
	if err := NewLocal().Send(&Packet{}); err == nil {
		t.Fatal("send before start should fail")
	}
}

func TestSendAfterCloseIsDropped(t *testing.T) {
	f := NewLocal()
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(&Packet{Dst: 0}); err != nil {
		t.Fatalf("post-close send must be silently dropped, got %v", err)
	}
	if got := col.waitFor(0, 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("packet delivered after close: %v", got)
	}
}

func TestTCPCrossTraffic(t *testing.T) {
	const ranks = 4
	f := NewTCP(ranks)
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	for src := 0; src < ranks; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				dst := (src + 1 + i) % ranks
				if err := f.Send(&Packet{Src: src, Dst: dst, Tag: i}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	total := 0
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		total = 0
		col.mu.Lock()
		for _, pkts := range col.got {
			total += len(pkts)
		}
		col.mu.Unlock()
		if total == ranks*20 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if total != ranks*20 {
		t.Fatalf("delivered %d packets, want %d", total, ranks*20)
	}
}

func TestTCPOutOfRangeDestination(t *testing.T) {
	f := NewTCP(2)
	if err := f.Start(func(int, *Packet) {}); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Send(&Packet{Dst: 5}); err == nil {
		t.Fatal("out-of-range destination should error")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Tag: 3, Payload: []byte{9}}
	q := p.Clone()
	q.Payload[0] = 7
	if p.Payload[0] != 9 {
		t.Fatal("clone shares payload storage")
	}
	if q.Src != 1 || q.Dst != 2 || q.Tag != 3 {
		t.Fatalf("clone header %+v", q)
	}
}

func TestLatencyActuallyDelays(t *testing.T) {
	const delay = 30 * time.Millisecond
	f := NewLatency(NewLocal(), delay)
	col := newCollector()
	if err := f.Start(col.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Send(&Packet{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	got := col.waitFor(1, 1, 5*time.Second)
	if len(got) != 1 {
		t.Fatal("packet lost")
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delivered after %v, want >= %v", elapsed, delay)
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindAgreement.String() != "agreement" {
		t.Fatal("kind names changed")
	}
	if s := fmt.Sprint(Kind(99)); s == "" {
		t.Fatal("unknown kind should still render")
	}
}
