package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// randomPacket builds a packet with field values spanning the encodable
// range, including negative tags (internal protocol tags) and nil
// payloads.
func randomPacket(rng *rand.Rand) *Packet {
	p := &Packet{
		Src:      rng.Intn(1 << 20),
		Dst:      rng.Intn(1 << 20),
		Tag:      rng.Intn(1<<16) - 1<<15,
		Context:  rng.Intn(1 << 10),
		Kind:     Kind(rng.Intn(2)),
		SrcGen:   rng.Uint32(),
		DstGen:   rng.Uint32(),
		Seq:      rng.Uint64(),
		Crc:      rng.Uint32(),
		RepSeq:   rng.Uint32(),
		RepEpoch: rng.Uint32(),
		HLC:      rng.Uint64(),
		Token:    rng.Uint64(),
	}
	if n := rng.Intn(512); n > 0 {
		p.Payload = make([]byte, n)
		rng.Read(p.Payload)
	}
	return p
}

// gobRoundTrip pushes a packet through the gob codec, the old wire format.
func gobRoundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var q Packet
	if err := gob.NewDecoder(&buf).Decode(&q); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return &q
}

// TestBinaryCodecMatchesGob is the property test of the new wire format:
// for random packets, binary round trip == gob round trip == original.
func TestBinaryCodecMatchesGob(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var hdr [FrameHeaderSize]byte
	for i := 0; i < 500; i++ {
		p := randomPacket(rng)
		frame, err := AppendFrame(nil, p)
		if err != nil {
			t.Fatalf("append frame: %v", err)
		}
		if len(frame) != FrameHeaderSize+len(p.Payload) {
			t.Fatalf("frame length %d, want %d", len(frame), FrameHeaderSize+len(p.Payload))
		}
		fromBinary, err := ReadFrame(bytes.NewReader(frame), hdr[:])
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		fromGob := gobRoundTrip(t, p)
		if !reflect.DeepEqual(fromBinary, fromGob) {
			t.Fatalf("codecs disagree:\nbinary: %+v\ngob:    %+v", fromBinary, fromGob)
		}
		if !reflect.DeepEqual(fromBinary, p) {
			t.Fatalf("round trip changed the packet:\ngot  %+v\nwant %+v", fromBinary, p)
		}
	}
}

// TestBinaryCodecStream decodes several concatenated frames in sequence,
// the shape the TCP read loop sees.
func TestBinaryCodecStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var frames []byte
	var want []*Packet
	for i := 0; i < 20; i++ {
		p := randomPacket(rng)
		want = append(want, p)
		var err error
		frames, err = AppendFrame(frames, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(frames)
	var hdr [FrameHeaderSize]byte
	for i, w := range want {
		got, err := ReadFrame(r, hdr[:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, w)
		}
	}
	if _, err := ReadFrame(r, hdr[:]); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

// TestReadFrameRejectsCorruption: bad magic, bad version, an absurd
// payload length, and any CRC-detectable mangling must all error, never
// panic or allocate the claim.
func TestReadFrameRejectsCorruption(t *testing.T) {
	good, err := AppendFrame(nil, &Packet{Src: 1, Dst: 2, Tag: 3, Payload: []byte("ok")})
	if err != nil {
		t.Fatal(err)
	}
	var hdr [FrameHeaderSize]byte
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), good...)
		mutate(b)
		_, err := ReadFrame(bytes.NewReader(b), hdr[:])
		return err
	}
	if err := corrupt(func(b []byte) { b[0] ^= 0xff }); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := corrupt(func(b []byte) { b[4] = 99 }); err == nil {
		t.Fatal("bad version accepted")
	}
	if err := corrupt(func(b []byte) { b[66], b[67], b[68], b[69] = 0xff, 0xff, 0xff, 0xff }); err == nil {
		t.Fatal("oversized payload length accepted")
	}
	if err := corrupt(func(b []byte) { b[66] = 1 }); err == nil {
		t.Fatal("shrunk payload length accepted")
	}
	if err := corrupt(func(b []byte) { b[38] ^= 0x01 }); err == nil {
		t.Fatal("flipped payload-crc field accepted")
	}
	if err := corrupt(func(b []byte) { b[30] ^= 0x80 }); err == nil {
		t.Fatal("flipped seq bit accepted")
	}
	if err := corrupt(func(b []byte) { b[42] ^= 0x01 }); err == nil {
		t.Fatal("flipped rep-seq field accepted")
	}
	if err := corrupt(func(b []byte) { b[46] ^= 0x01 }); err == nil {
		t.Fatal("flipped rep-epoch field accepted")
	}
	if err := corrupt(func(b []byte) { b[50] ^= 0x01 }); err == nil {
		t.Fatal("flipped hlc field accepted")
	}
	if err := corrupt(func(b []byte) { b[58] ^= 0x01 }); err == nil {
		t.Fatal("flipped token field accepted")
	}
	if err := corrupt(func(b []byte) { b[FrameHeaderSize] ^= 0x04 }); err == nil {
		t.Fatal("flipped payload bit accepted")
	}
	if err := corrupt(func(b []byte) { b[FrameHeaderSize-1] ^= 0xff }); err == nil {
		t.Fatal("flipped frame-crc byte accepted")
	}
}

// TestAppendFrameRejectsOutOfRange: fields beyond int32 cannot be framed.
func TestAppendFrameRejectsOutOfRange(t *testing.T) {
	if _, err := AppendFrame(nil, &Packet{Src: 1 << 40}); err == nil {
		t.Fatal("out-of-range src accepted")
	}
}

// TestClonePooledRelease checks the pooled clone contract: the clone is a
// deep copy, and releasing it does not disturb the original.
func TestClonePooledRelease(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Tag: 3, Payload: []byte{9, 8, 7}}
	q := p.ClonePooled()
	q.Payload[0] = 42
	if p.Payload[0] != 9 {
		t.Fatal("pooled clone shares payload storage")
	}
	q.ReleasePayload()
	if q.Payload != nil {
		t.Fatal("release did not nil the payload")
	}
	if p.Payload[0] != 9 || len(p.Payload) != 3 {
		t.Fatal("release disturbed the original")
	}
}

// FuzzFrameRoundTrip fuzzes the encode/decode pair over the header fields
// and payload.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, 1, 5, 7, uint8(0), uint64(3), uint32(0), uint64(0), uint64(0), []byte("payload"))
	f.Add(3, 0, -2, 0, uint8(1), uint64(0), uint32(1), uint64(1)<<12, uint64(3)<<TokenBits|9, []byte(nil))
	f.Add(1<<19, 1<<19, -(1 << 14), 1<<9, uint8(7), ^uint64(0), ^uint32(0), ^uint64(0), ^uint64(0), []byte{0})
	f.Fuzz(func(t *testing.T, src, dst, tag, ctx int, kind uint8, seq uint64, crc uint32, hlc, tok uint64, payload []byte) {
		p := &Packet{Src: src, Dst: dst, Tag: tag, Context: ctx, Kind: Kind(kind), Seq: seq, Crc: crc, HLC: hlc, Token: tok}
		if len(payload) > 0 {
			p.Payload = payload
		}
		frame, err := AppendFrame(nil, p)
		if err != nil {
			// Out-of-range fields are rejected, never mis-encoded.
			if fitsInt32(src) && fitsInt32(dst) && fitsInt32(tag) && fitsInt32(ctx) {
				t.Fatalf("unexpected encode error: %v", err)
			}
			return
		}
		var hdr [FrameHeaderSize]byte
		q, err := ReadFrame(bytes.NewReader(frame), hdr[:])
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the packet:\ngot  %+v\nwant %+v", q, p)
		}
	})
}

// FuzzFrameCorruption is the integrity proof behind the chaos layer: any
// nonzero xor burst of up to 4 bytes applied anywhere in an encoded frame
// must be rejected by ReadFrame — no corrupted frame ever reaches the
// matching engine. CRC-32C guarantees detection of every error burst of at
// most 32 bits, so this holds for ALL inputs, not just the ones the fuzzer
// happens to try. The one excluded window is a burst overlapping the
// payload-length field: rewriting the length changes how many bytes the
// decoder even considers, which is outside the burst theorem (those cases
// are covered deterministically in TestReadFrameRejectsCorruption and by
// FuzzReadFrame's never-panic property).
func FuzzFrameCorruption(f *testing.F) {
	f.Add([]byte("ring token"), 0, uint32(0xff))
	f.Add([]byte{}, 5, uint32(1))
	f.Add([]byte{1, 2, 3}, FrameHeaderSize, uint32(0x80000000))
	f.Fuzz(func(t *testing.T, payload []byte, off int, mask uint32) {
		if mask == 0 || len(payload) > 1<<16 {
			t.Skip()
		}
		p := &Packet{Src: 1, Dst: 2, Tag: 3, Context: 4, Seq: 99, Payload: payload, Crc: PayloadCrc(payload)}
		frame, err := AppendFrame(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off = -off
		}
		off %= len(frame) - 3 // keep the 4-byte window inside the frame
		if off < 70 && off+4 > 66 {
			t.Skip() // burst overlaps the payload-length field
		}
		var m [4]byte
		binary.LittleEndian.PutUint32(m[:], mask)
		for i := 0; i < 4; i++ {
			frame[off+i] ^= m[i]
		}
		var hdr [FrameHeaderSize]byte
		if pkt, err := ReadFrame(bytes.NewReader(frame), hdr[:]); err == nil {
			t.Fatalf("corrupted frame decoded as %+v (burst at %d, mask %#x)", pkt, off, mask)
		}
	})
}

// FuzzReadFrame throws arbitrary bytes at the decoder: it must error or
// succeed, never panic or over-allocate.
func FuzzReadFrame(f *testing.F) {
	seed, _ := AppendFrame(nil, &Packet{Src: 1, Dst: 2, Tag: 3, Payload: []byte("x")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, FrameHeaderSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		var hdr [FrameHeaderSize]byte
		_, _ = ReadFrame(bytes.NewReader(data), hdr[:])
	})
}

// --- codec micro-benchmarks ---------------------------------------------------

func benchPacket(payload int) *Packet {
	return &Packet{Src: 3, Dst: 5, Tag: 17, Context: 2, Seq: 42, Payload: make([]byte, payload)}
}

// BenchmarkFrameEncode measures the binary encoder on a pooled buffer —
// the TCP fabric's steady-state send path.
func BenchmarkFrameEncode(b *testing.B) {
	for _, size := range []int{16, 1024} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			p := benchPacket(size)
			b.SetBytes(int64(FrameHeaderSize + size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fb := getFrameBuf()
				out, err := AppendFrame(fb.b, p)
				if err != nil {
					b.Fatal(err)
				}
				fb.b = out
				putFrameBuf(fb)
			}
		})
	}
}

// BenchmarkGobEncode measures the baseline gob encoder on the same packet
// (fresh encoder per op, matching one connection's amortized cost poorly
// but including the per-stream dictionary the wire actually pays once).
func BenchmarkGobEncode(b *testing.B) {
	for _, size := range []int{16, 1024} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			p := benchPacket(size)
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			b.SetBytes(int64(FrameHeaderSize + size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := enc.Encode(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrameDecode measures the binary decoder against an in-memory
// stream.
func BenchmarkFrameDecode(b *testing.B) {
	for _, size := range []int{16, 1024} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			frame, err := AppendFrame(nil, benchPacket(size))
			if err != nil {
				b.Fatal(err)
			}
			var hdr [FrameHeaderSize]byte
			r := bytes.NewReader(frame)
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Reset(frame)
				if _, err := ReadFrame(r, hdr[:]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteSizeName(n int) string {
	if n >= 1024 {
		return "1KiB"
	}
	return "16B"
}
