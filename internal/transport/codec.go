package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Binary wire format for the TCP fabric (CodecBinary).
//
// Every packet is one frame: a fixed 74-byte little-endian header followed
// by the raw payload bytes. The header carries every Packet field plus the
// payload length, so a frame is self-delimiting and decodable with exactly
// two reads (header, payload) into caller-provided buffers — no reflection
// and no per-message type dictionaries, which is what makes it ~an order
// of magnitude cheaper than the gob stream it replaces. Version 3 added
// the two generation stamps for elastic worlds (src gen, dst gen) so
// stale-incarnation fencing survives a real wire, not just the in-memory
// fabric. Version 4 added the replication stamps (rep seq, rep epoch) so
// fan-out dedup survives a real wire too. Version 5 added the causal
// tracing stamps: the sender's hybrid-logical-clock timestamp and the
// origin token that identifies one message across every rank that
// touches it (see internal/trace and Packet.Token).
//
//	offset size field
//	0      4    magic   (0x46544D50, "FTMP")
//	4      1    version (5)
//	5      1    kind
//	6      4    src     (int32)
//	10     4    dst     (int32)
//	14     4    tag     (int32)
//	18     4    context (int32)
//	22     4    src gen (uint32)
//	26     4    dst gen (uint32)
//	30     8    seq     (uint64)
//	38     4    payload crc (Packet.Crc, end-to-end; carried verbatim)
//	42     4    rep seq (uint32, replication logical-channel sequence)
//	46     4    rep epoch (uint32, sender replica-group epoch; diagnostic)
//	50     8    hlc     (uint64, sender hybrid-logical-clock stamp)
//	58     8    token   (uint64, causal origin token: rank<<48 | seq)
//	66     4    payload length (uint32)
//	70     4    frame crc (CRC-32C over header[0:70] + payload)
//	74     ...  payload
//
// Two CRCs with different jobs: the frame CRC is wire-level integrity —
// computed at encode time, verified by ReadFrame, so a frame mangled in
// flight is rejected (ErrFrameCorrupt) before any of its fields are
// trusted. The payload CRC is end-to-end — stamped by the reliability
// sublayer at the sender, carried opaquely through every fabric and codec,
// and verified just below the engine, so corruption introduced *between*
// codecs (e.g. by a buffering wrapper, or a fault-injecting fabric) is
// still caught. CRC-32C (Castagnoli) detects all burst errors up to 32
// bits, which the corruption fuzz test relies on.
const (
	// FrameHeaderSize is the fixed size of the binary frame header.
	FrameHeaderSize = 74
	// MaxFramePayload bounds a frame's payload length; decoders reject
	// larger lengths rather than trusting the wire with the allocation.
	MaxFramePayload = 1 << 27

	frameMagic   uint32 = 0x46544D50 // "FTMP"
	frameVersion byte   = 5

	// frameCrcOffset is where the frame CRC lives; it covers [0, frameCrcOffset).
	frameCrcOffset = 70
)

// crcTable is the Castagnoli polynomial table shared by both CRCs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PayloadCrc returns the end-to-end CRC-32C of a payload, the value the
// reliability sublayer stamps into Packet.Crc before a data packet enters
// the fabric chain and verifies on arrival. The empty payload hashes to 0,
// conveniently matching the zero value of an unchecked packet.
func PayloadCrc(b []byte) uint32 {
	if len(b) == 0 {
		return 0
	}
	return crc32.Checksum(b, crcTable)
}

// ErrFrameCorrupt reports a frame that failed header validation or whose
// frame CRC did not match its contents.
var ErrFrameCorrupt = errors.New("transport: corrupt frame")

// fitsInt32 reports whether v survives an int32 round trip.
func fitsInt32(v int) bool { return int(int32(v)) == v }

// AppendFrame appends the binary encoding of pkt (header + payload) to dst
// and returns the extended slice. It allocates only if dst lacks capacity,
// so steady-state senders can reuse a pooled buffer via GetFrameBuf.
func AppendFrame(dst []byte, pkt *Packet) ([]byte, error) {
	if len(pkt.Payload) > MaxFramePayload {
		return dst, fmt.Errorf("transport: payload %d exceeds frame limit %d", len(pkt.Payload), MaxFramePayload)
	}
	if !fitsInt32(pkt.Src) || !fitsInt32(pkt.Dst) || !fitsInt32(pkt.Tag) || !fitsInt32(pkt.Context) {
		return dst, fmt.Errorf("transport: packet field out of int32 range: %s", pkt)
	}
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = frameVersion
	hdr[5] = byte(pkt.Kind)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(int32(pkt.Src)))
	binary.LittleEndian.PutUint32(hdr[10:14], uint32(int32(pkt.Dst)))
	binary.LittleEndian.PutUint32(hdr[14:18], uint32(int32(pkt.Tag)))
	binary.LittleEndian.PutUint32(hdr[18:22], uint32(int32(pkt.Context)))
	binary.LittleEndian.PutUint32(hdr[22:26], pkt.SrcGen)
	binary.LittleEndian.PutUint32(hdr[26:30], pkt.DstGen)
	binary.LittleEndian.PutUint64(hdr[30:38], pkt.Seq)
	binary.LittleEndian.PutUint32(hdr[38:42], pkt.Crc)
	binary.LittleEndian.PutUint32(hdr[42:46], pkt.RepSeq)
	binary.LittleEndian.PutUint32(hdr[46:50], pkt.RepEpoch)
	binary.LittleEndian.PutUint64(hdr[50:58], pkt.HLC)
	binary.LittleEndian.PutUint64(hdr[58:66], pkt.Token)
	binary.LittleEndian.PutUint32(hdr[66:70], uint32(len(pkt.Payload)))
	fcrc := crc32.Checksum(hdr[:frameCrcOffset], crcTable)
	fcrc = crc32.Update(fcrc, crcTable, pkt.Payload)
	binary.LittleEndian.PutUint32(hdr[frameCrcOffset:FrameHeaderSize], fcrc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, pkt.Payload...)
	return dst, nil
}

// ReadFrame reads one binary frame from r. hdr must be a scratch slice of
// at least FrameHeaderSize bytes (reused across calls by the read loop).
// The returned packet's payload is freshly allocated: ownership passes to
// the caller, which may retain it indefinitely (the matching engine queues
// payloads on the unexpected list).
func ReadFrame(r io.Reader, hdr []byte) (*Packet, error) {
	hdr = hdr[:FrameHeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrFrameCorrupt, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if hdr[4] != frameVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrFrameCorrupt, hdr[4])
	}
	plen := binary.LittleEndian.Uint32(hdr[66:70])
	if plen > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrameCorrupt, plen, MaxFramePayload)
	}
	pkt := &Packet{
		Kind:     Kind(hdr[5]),
		Src:      int(int32(binary.LittleEndian.Uint32(hdr[6:10]))),
		Dst:      int(int32(binary.LittleEndian.Uint32(hdr[10:14]))),
		Tag:      int(int32(binary.LittleEndian.Uint32(hdr[14:18]))),
		Context:  int(int32(binary.LittleEndian.Uint32(hdr[18:22]))),
		SrcGen:   binary.LittleEndian.Uint32(hdr[22:26]),
		DstGen:   binary.LittleEndian.Uint32(hdr[26:30]),
		Seq:      binary.LittleEndian.Uint64(hdr[30:38]),
		Crc:      binary.LittleEndian.Uint32(hdr[38:42]),
		RepSeq:   binary.LittleEndian.Uint32(hdr[42:46]),
		RepEpoch: binary.LittleEndian.Uint32(hdr[46:50]),
		HLC:      binary.LittleEndian.Uint64(hdr[50:58]),
		Token:    binary.LittleEndian.Uint64(hdr[58:66]),
	}
	if plen > 0 {
		pkt.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, pkt.Payload); err != nil {
			return nil, err
		}
	}
	fcrc := crc32.Checksum(hdr[:frameCrcOffset], crcTable)
	fcrc = crc32.Update(fcrc, crcTable, pkt.Payload)
	if got := binary.LittleEndian.Uint32(hdr[frameCrcOffset:FrameHeaderSize]); got != fcrc {
		return nil, fmt.Errorf("%w: frame crc mismatch (want %#x, got %#x)", ErrFrameCorrupt, fcrc, got)
	}
	return pkt, nil
}

// --- pooled buffers ----------------------------------------------------------
//
// Two pools back the hot paths:
//
//   - frame buffers: send-side scratch holding one encoded frame. The TCP
//     Send path encodes into one, hands it to the per-connection writer,
//     and the writer releases it after the bytes reach the socket — the
//     packet itself is never retained, so callers may reuse payloads the
//     moment Send returns.
//   - payload buffers: backing store for Packet.ClonePooled, used by
//     buffering fabrics (Latency) when the inner fabric is NonRetaining.
//
// The release contract is explicit: whoever takes a buffer out of a pool
// owns it and must put it back exactly once, and only once nothing else
// can reference it.

// frameBuf is a pooled, reusable frame encoding buffer.
type frameBuf struct{ b []byte }

// maxPooledCap caps what is returned to the pools, so one giant message
// doesn't pin a giant buffer forever.
const maxPooledCap = 1 << 20

var framePool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} },
}

// getFrameBuf takes an empty frame buffer from the pool.
func getFrameBuf() *frameBuf {
	fb := framePool.Get().(*frameBuf)
	fb.b = fb.b[:0]
	return fb
}

// putFrameBuf returns a frame buffer to the pool.
func putFrameBuf(fb *frameBuf) {
	if cap(fb.b) > maxPooledCap {
		return // let the outlier be collected
	}
	framePool.Put(fb)
}

var payloadPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// getPayload returns a pooled byte slice of length n.
func getPayload(n int) []byte {
	p := payloadPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	return (*p)[:n]
}

// putPayload returns a payload buffer obtained from getPayload.
func putPayload(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// ClonePooled returns a deep copy of the packet whose payload storage
// comes from an internal pool. The clone is only valid until
// ReleasePayload is called; callers must guarantee nothing retains the
// clone's payload past that point. Buffering fabrics use it on the path
// to a NonRetaining inner fabric, where the payload's lifetime provably
// ends when the inner Send returns.
func (p *Packet) ClonePooled() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = getPayload(len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return &q
}

// ReleasePayload returns a ClonePooled payload to the pool and nils it.
// Calling it on a packet whose payload is still referenced elsewhere is a
// use-after-free class bug; only call it on clones you created.
func (p *Packet) ReleasePayload() {
	if p.Payload != nil {
		putPayload(p.Payload)
		p.Payload = nil
	}
}
