// Package heat is a fault-tolerant 1-D heat-diffusion solver built on the
// run-through stabilization runtime — the application domain the paper's
// related work points at (Ltaief, Gabriel & Garbey's fault tolerant heat
// transfer [25]) and a natural-fault-tolerance demonstration (Engelmann &
// Geist [26,27]).
//
// The domain is split into contiguous blocks, one per rank. Every step
// exchanges halo cells with the nearest ALIVE left/right neighbor using
// the same fault-aware neighbor selection as the ring (paper Fig. 4) and
// the same posted-receive failure detection as FT_Recv_left. When a rank
// dies its block is lost; survivors splice the domain across the gap and
// keep integrating — the "approximately correct answer" mode of natural
// fault tolerance: the global temperature field remains bounded, smooth,
// and convergent, with a local error around the lost block.
//
// The solver is deliberately structured like the ring application:
// neighbor state, send-with-failover, receive-with-detection, and a
// validate_all-based epilogue, so it doubles as a second, independent
// exercise of the paper's design checklist (control management, duplicate
// suppression via step-stamped halos, termination).
package heat

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/mpi"
)

// Halo exchange tags.
const (
	tagLeftward  = 11 // cell flowing to the left neighbor
	tagRightward = 12 // cell flowing to the right neighbor
)

// Config parameterizes the solver.
type Config struct {
	// CellsPerRank is the local block width (>= 1).
	CellsPerRank int
	// Steps is the number of explicit Euler steps.
	Steps int
	// Alpha is the diffusion number dt*k/dx^2; stability needs <= 0.5.
	Alpha float64
	// InitialPeak places a unit heat spike at the global domain center
	// when true; otherwise blocks start with rank-dependent plateaus.
	InitialPeak bool
}

// Result is one rank's outcome.
type Result struct {
	// Block is the final local temperature field.
	Block []float64
	// StepsDone counts completed steps. A recovered incarnation counts
	// only the steps it integrated itself (Steps - ResumeStep).
	StepsDone int
	// NeighborChanges counts halo-partner failovers (deaths survived).
	NeighborChanges int
	// Sum is the local heat content (for conservation checks).
	Sum float64
	// Recovered reports that this incarnation warm-started from a
	// neighbor's published state (elastic respawn, generation > 1).
	Recovered bool
	// ResumeStep is the step the recovered incarnation re-entered the
	// integration at (0 when not recovered).
	ResumeStep int
}

// solver is the per-rank state.
type solver struct {
	p    *mpi.Proc
	c    *mpi.Comm
	cfg  Config
	me   int
	size int
	left int // current left halo partner (comm rank), ProcNull at edge
	rght int // current right halo partner

	block []float64
	res   Result

	// snap is the state snapshot served to FetchState callers. It is
	// republished (a fresh, never-mutated buffer) after every step and
	// read by the provider on the delivery goroutine, so the atomic
	// pointer is the entire synchronization story.
	snap atomic.Pointer[[]byte]
}

// Run executes the solver on rank p and returns its result. All ranks of
// the world must call Run with the same Config.
func Run(p *mpi.Proc, cfg Config) (*Result, error) {
	if cfg.CellsPerRank < 1 || cfg.Steps < 0 {
		return nil, fmt.Errorf("heat: invalid config %+v: %w", cfg, mpi.ErrInvalidArg)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 0.5 {
		return nil, fmt.Errorf("heat: alpha %v outside stable (0, 0.5]: %w", cfg.Alpha, mpi.ErrInvalidArg)
	}
	s := &solver{p: p, c: p.World(), cfg: cfg, me: p.Rank(), size: p.Size()}
	s.c.SetErrhandler(mpi.ErrorsReturn)
	s.initBlock()
	s.left = s.nearestAlive(-1)
	s.rght = s.nearestAlive(+1)
	start := 0
	if p.Gen() > 1 {
		// Elastic reincarnation: the block died with the previous
		// incarnation. Warm-start from a neighbor's published state — the
		// natural-fault-tolerance approximation — and re-enter the
		// integration at the neighbor's step so the halo step stamps line
		// up. A failed fetch falls back to the cold initial condition.
		if at, ok := s.recoverFromNeighbor(); ok {
			start = at
			s.res.Recovered = true
			s.res.ResumeStep = at
		}
	}
	s.publish(start)
	p.SetStateProvider(func() []byte {
		if b := s.snap.Load(); b != nil {
			return *b
		}
		return nil
	})
	for step := start; step < cfg.Steps; step++ {
		if err := s.step(step); err != nil {
			return nil, err
		}
		s.res.StepsDone++
		s.publish(step + 1)
	}
	s.drainEpilogue()
	for _, v := range s.block {
		s.res.Sum += v
	}
	s.res.Block = s.block
	return &s.res, nil
}

// initBlock builds the initial condition.
func (s *solver) initBlock() {
	s.block = make([]float64, s.cfg.CellsPerRank)
	if s.cfg.InitialPeak {
		mid := s.size * s.cfg.CellsPerRank / 2
		for i := range s.block {
			if s.me*s.cfg.CellsPerRank+i == mid {
				s.block[i] = 1.0
			}
		}
		return
	}
	for i := range s.block {
		s.block[i] = float64(s.me + 1)
	}
}

// nearestAlive walks from this rank in the given direction (+1 right,
// -1 left) to the nearest alive rank, returning ProcNull at the domain
// edge (the physical boundary does not wrap).
func (s *solver) nearestAlive(dir int) int {
	for r := s.me + dir; 0 <= r && r < s.size; r += dir {
		info, err := s.c.RankState(r)
		if err == nil && info.State == mpi.RankOK {
			return r
		}
	}
	return mpi.ProcNull
}

// halo is a step-stamped boundary cell. The step stamp plays the role of
// the ring's iteration marker: after a neighbor failover the replacement
// partner's first halo may belong to an older step and must be re-read.
type halo struct {
	Step  int64
	Value float64
}

func (h halo) encode() []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, uint64(h.Step))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(h.Value))
	return buf
}

func decodeHalo(b []byte) (halo, error) {
	if len(b) != 16 {
		return halo{}, fmt.Errorf("heat: malformed halo (%d bytes)", len(b))
	}
	return halo{
		Step:  int64(binary.LittleEndian.Uint64(b)),
		Value: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	}, nil
}

// publish refreshes the snapshot served to FetchState: the step the
// block is current for, followed by the cells. The buffer is freshly
// allocated and never written again, so concurrent provider reads are
// safe without a lock.
func (s *solver) publish(step int) {
	buf := make([]byte, 16+8*len(s.block))
	binary.LittleEndian.PutUint64(buf, uint64(int64(step)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(s.block)))
	for i, v := range s.block {
		binary.LittleEndian.PutUint64(buf[16+8*i:], math.Float64bits(v))
	}
	s.snap.Store(&buf)
}

// decodeState parses a snapshot published by publish.
func decodeState(b []byte) (step int, cells []float64, err error) {
	if len(b) < 16 {
		return 0, nil, fmt.Errorf("heat: malformed state (%d bytes)", len(b))
	}
	step = int(int64(binary.LittleEndian.Uint64(b)))
	n := int(binary.LittleEndian.Uint64(b[8:]))
	if n < 0 || len(b) != 16+8*n {
		return 0, nil, fmt.Errorf("heat: malformed state (%d cells, %d bytes)", n, len(b))
	}
	cells = make([]float64, n)
	for i := range cells {
		cells[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[16+8*i:]))
	}
	return step, cells, nil
}

// recoverFromNeighbor rebuilds a lost block from the nearest alive
// neighbor's published state: the block is filled with the neighbor's
// facing boundary cell (a smooth, zero-gradient continuation across the
// gap) and the integration resumes at the neighbor's step, clamped to
// the configured horizon. Returns ok=false when no neighbor could serve
// state (all dead, no provider, or a fetch race with a failure).
func (s *solver) recoverFromNeighbor() (int, bool) {
	type src struct {
		rank int
		face func(cells []float64) float64 // facing boundary cell
	}
	last := func(cells []float64) float64 { return cells[len(cells)-1] }
	first := func(cells []float64) float64 { return cells[0] }
	for _, cand := range []src{{s.left, last}, {s.rght, first}} {
		if cand.rank == mpi.ProcNull {
			continue
		}
		raw, err := s.p.FetchState(cand.rank)
		if err != nil {
			continue
		}
		step, cells, err := decodeState(raw)
		if err != nil || len(cells) == 0 {
			continue
		}
		if step > s.cfg.Steps {
			step = s.cfg.Steps
		}
		v := cand.face(cells)
		for i := range s.block {
			s.block[i] = v
		}
		return step, true
	}
	return 0, false
}

// step performs one halo exchange + Euler update, riding through any
// neighbor failures it encounters.
func (s *solver) step(step int) error {
	leftVal, err := s.exchange(step, &s.left, -1, tagLeftward, tagRightward, s.block[0])
	if err != nil {
		return err
	}
	rightVal, err := s.exchange(step, &s.rght, +1, tagRightward, tagLeftward, s.block[len(s.block)-1])
	if err != nil {
		return err
	}

	next := make([]float64, len(s.block))
	for i := range s.block {
		l := leftVal
		if i > 0 {
			l = s.block[i-1]
		}
		r := rightVal
		if i < len(s.block)-1 {
			r = s.block[i+1]
		}
		next[i] = s.block[i] + s.cfg.Alpha*(l-2*s.block[i]+r)
	}
	s.block = next
	return nil
}

// exchange swaps one boundary cell with the partner in *partner,
// failing over to the next alive rank in direction dir on death. sendTag
// is the tag this cell travels on toward the partner; recvTag is the tag
// of the partner's cell flowing back. At a physical boundary (ProcNull)
// the exchange degenerates to an insulated boundary (mirror value).
//
// Step stamps handle the desynchronization a failover introduces: the
// surviving pair on either side of a dead rank can be one step apart
// (the dead rank finished one side's exchange but not the other's).
// Halos older than the current step are dropped like the ring's stale
// markers; halos from the future are accepted as this step's boundary —
// the natural-fault-tolerance approximation. The production/consumption
// deficit this creates is covered by drainEpilogue's surplus halos.
func (s *solver) exchange(step int, partner *int, dir, sendTag, recvTag int, boundary float64) (float64, error) {
	sent := mpi.ProcNull // partner the halo was last sent to this step
	for {
		if *partner == mpi.ProcNull {
			return boundary, nil // insulated edge: zero-flux boundary
		}
		req := s.c.Irecv(*partner, recvTag)
		if sent != *partner {
			h := halo{Step: int64(step), Value: boundary}
			if err := s.c.Send(*partner, sendTag, h.encode()); err != nil {
				req.Cancel()
				if !mpi.IsRankFailStop(err) {
					return 0, err
				}
				s.failover(partner, dir)
				continue
			}
			sent = *partner
		}
		if _, err := req.Wait(); err != nil {
			if !mpi.IsRankFailStop(err) {
				return 0, err
			}
			s.failover(partner, dir)
			continue
		}
		got, err := decodeHalo(req.Payload())
		if err != nil {
			return 0, err
		}
		if got.Step < int64(step) {
			// Stale halo from a partner one step behind (it just failed
			// over to us): drop it and wait for the current step's value.
			continue
		}
		return got.Value, nil
	}
}

// drainEpilogue sends surplus final halos in both directions after the
// last step. A surviving neighbor that ended up a step behind due to a
// failover (see exchange) consumes one of these to finish; the rest land
// in dead-letter queues harmlessly. The surplus bound is the number of
// failures a direction can absorb, i.e. the world size.
func (s *solver) drainEpilogue() {
	final := halo{Step: int64(s.cfg.Steps), Value: 0}
	if len(s.block) > 0 {
		final.Value = s.block[0]
	}
	for i := 0; i < s.size; i++ {
		if s.left != mpi.ProcNull {
			final.Value = s.block[0]
			if err := s.c.Send(s.left, tagLeftward, final.encode()); err != nil {
				s.failover(&s.left, -1)
			}
		}
		if s.rght != mpi.ProcNull {
			final.Value = s.block[len(s.block)-1]
			if err := s.c.Send(s.rght, tagRightward, final.encode()); err != nil {
				s.failover(&s.rght, +1)
			}
		}
	}
}

// failover advances the partner pointer past a dead rank.
func (s *solver) failover(partner *int, dir int) {
	next := mpi.ProcNull
	for r := *partner + dir; 0 <= r && r < s.size; r += dir {
		info, err := s.c.RankState(r)
		if err == nil && info.State == mpi.RankOK {
			next = r
			break
		}
	}
	*partner = next
	s.res.NeighborChanges++
}
