package heat

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/mpi"
)

// runHeat executes the solver on n ranks and collects per-rank results.
func runHeat(t *testing.T, n int, cfg Config, opts ...mpi.Option) (map[int]*Result, *mpi.RunResult) {
	t.Helper()
	w, err := mpi.NewWorld(n, append([]mpi.Option{mpi.WithDeadline(30 * time.Second)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	results := map[int]*Result{}
	res, err := w.Run(func(p *mpi.Proc) error {
		r, err := Run(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = r
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return results, res
}

// serial computes the same explicit scheme on one array, as the oracle.
func serial(n, cells, steps int, alpha float64, peak bool) []float64 {
	field := make([]float64, n*cells)
	if peak {
		field[len(field)/2] = 1.0
	} else {
		for i := range field {
			field[i] = float64(i/cells + 1)
		}
	}
	for s := 0; s < steps; s++ {
		next := make([]float64, len(field))
		for i := range field {
			l := field[i]
			if i > 0 {
				l = field[i-1]
			}
			r := field[i]
			if i < len(field)-1 {
				r = field[i+1]
			}
			next[i] = field[i] + alpha*(l-2*field[i]+r)
		}
		field = next
	}
	return field
}

func TestMatchesSerialSolutionFailureFree(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			cfg := Config{CellsPerRank: 8, Steps: 25, Alpha: 0.4, InitialPeak: true}
			results, res := runHeat(t, n, cfg)
			for rank, rr := range res.Ranks {
				if rr.Err != nil || !rr.Finished {
					t.Fatalf("rank %d: %+v", rank, rr)
				}
			}
			oracle := serial(n, cfg.CellsPerRank, cfg.Steps, cfg.Alpha, true)
			for rank := 0; rank < n; rank++ {
				block := results[rank].Block
				for i, v := range block {
					want := oracle[rank*cfg.CellsPerRank+i]
					if math.Abs(v-want) > 1e-12 {
						t.Fatalf("rank %d cell %d: got %v want %v", rank, i, v, want)
					}
				}
			}
		})
	}
}

func TestHeatConservationFailureFree(t *testing.T) {
	cfg := Config{CellsPerRank: 16, Steps: 40, Alpha: 0.25, InitialPeak: true}
	results, _ := runHeat(t, 4, cfg)
	total := 0.0
	for _, r := range results {
		total += r.Sum
	}
	// Insulated boundaries conserve total heat exactly (up to rounding).
	if math.Abs(total-1.0) > 1e-9 {
		t.Fatalf("total heat %v, want 1.0", total)
	}
}

func TestHeatRunsThroughNeighborFailure(t *testing.T) {
	cfg := Config{CellsPerRank: 8, Steps: 30, Alpha: 0.4}
	plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 10))
	results, res := runHeat(t, 5, cfg, mpi.WithHook(plan.Hook()))
	if !res.Ranks[2].Killed {
		t.Fatalf("rank 2 should have died: %+v", res.Ranks[2])
	}
	changes := 0
	for _, rank := range []int{0, 1, 3, 4} {
		rr := res.Ranks[rank]
		if rr.Err != nil || !rr.Finished {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		r := results[rank]
		if r.StepsDone != cfg.Steps {
			t.Fatalf("rank %d completed %d steps, want %d", rank, r.StepsDone, cfg.Steps)
		}
		changes += r.NeighborChanges
		for i, v := range r.Block {
			if math.IsNaN(v) || v < -1e-9 || v > float64(5)+1e-9 {
				t.Fatalf("rank %d cell %d diverged: %v", rank, i, v)
			}
		}
	}
	if changes < 2 {
		t.Fatalf("expected both neighbors of rank 2 to fail over, got %d changes", changes)
	}
}

func TestHeatRunsThroughMultipleFailures(t *testing.T) {
	cfg := Config{CellsPerRank: 6, Steps: 24, Alpha: 0.3}
	plan := inject.NewPlan().Add(
		inject.AfterNthRecv(1, 6),
		inject.AfterNthRecv(4, 14),
	)
	results, res := runHeat(t, 6, cfg, mpi.WithHook(plan.Hook()))
	for _, rank := range []int{0, 2, 3, 5} {
		rr := res.Ranks[rank]
		if rr.Err != nil || !rr.Finished {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		if results[rank].StepsDone != cfg.Steps {
			t.Fatalf("rank %d steps %d", rank, results[rank].StepsDone)
		}
	}
}

func TestHeatEdgeRankFailure(t *testing.T) {
	// Killing the leftmost rank turns rank 1 into the new domain edge.
	cfg := Config{CellsPerRank: 8, Steps: 20, Alpha: 0.4}
	plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 5))
	results, res := runHeat(t, 4, cfg, mpi.WithHook(plan.Hook()))
	for _, rank := range []int{1, 2, 3} {
		if res.Ranks[rank].Err != nil || !res.Ranks[rank].Finished {
			t.Fatalf("rank %d: %+v", rank, res.Ranks[rank])
		}
		if results[rank].StepsDone != cfg.Steps {
			t.Fatalf("rank %d steps %d", rank, results[rank].StepsDone)
		}
	}
}

func TestHeatConfigValidation(t *testing.T) {
	w, err := mpi.NewWorld(1, mpi.WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		if _, err := Run(p, Config{CellsPerRank: 0, Steps: 1, Alpha: 0.4}); err == nil {
			return fmt.Errorf("zero cells accepted")
		}
		if _, err := Run(p, Config{CellsPerRank: 4, Steps: 1, Alpha: 0.9}); err == nil {
			return fmt.Errorf("unstable alpha accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

func TestHaloCodecRoundTrip(t *testing.T) {
	h := halo{Step: 42, Value: -3.75}
	got, err := decodeHalo(h.encode())
	if err != nil || got != h {
		t.Fatalf("round trip %+v err %v", got, err)
	}
	if _, err := decodeHalo([]byte{1, 2}); err == nil {
		t.Fatal("short halo accepted")
	}
}
