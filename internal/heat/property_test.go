package heat

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/inject"
	"repro/internal/mpi"
)

// TestSerialEquivalenceProperty: for arbitrary (small) configurations,
// the failure-free parallel solver matches the serial oracle bit-for-bit
// at every rank — the scheme is deterministic, so the halo exchange must
// introduce no drift at any decomposition.
func TestSerialEquivalenceProperty(t *testing.T) {
	prop := func(seed uint16) bool {
		n := 1 + int(seed%6)         // 1..6 ranks
		cells := 2 + int(seed>>3)%6  // 2..7 cells per rank
		steps := 1 + int(seed>>6)%12 // 1..12 steps
		alpha := 0.05 + 0.4*float64(seed%7)/7.0
		peak := seed%2 == 0
		cfg := Config{CellsPerRank: cells, Steps: steps, Alpha: alpha, InitialPeak: peak}

		w, err := mpi.NewWorld(n, mpi.WithDeadline(30*time.Second))
		if err != nil {
			return false
		}
		var mu sync.Mutex
		blocks := map[int][]float64{}
		res, err := w.Run(func(p *mpi.Proc) error {
			r, err := Run(p, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			blocks[p.Rank()] = r.Block
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Logf("seed %d cfg %+v: %v", seed, cfg, err)
			return false
		}
		for rank, rr := range res.Ranks {
			if rr.Err != nil {
				t.Logf("seed %d: rank %d %v", seed, rank, rr.Err)
				return false
			}
		}
		oracle := serial(n, cells, steps, alpha, peak)
		for rank := 0; rank < n; rank++ {
			for i, v := range blocks[rank] {
				if math.Abs(v-oracle[rank*cells+i]) > 1e-12 {
					t.Logf("seed %d cfg %+v: rank %d cell %d: %v vs %v",
						seed, cfg, rank, i, v, oracle[rank*cells+i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHeatBoundednessUnderRandomFailure: with one random mid-run failure,
// survivors stay within the physical bounds of the initial condition
// (maximum principle, up to the splice approximation).
func TestHeatBoundednessUnderRandomFailure(t *testing.T) {
	prop := func(seed uint16) bool {
		n := 4 + int(seed%3)
		victim := 1 + int(seed)%(n-1)
		ordinal := 1 + int(seed>>4)%10
		cfg := Config{CellsPerRank: 6, Steps: 20, Alpha: 0.35}
		plan := inject.NewPlan().Add(inject.AfterNthRecv(victim, ordinal))
		w, err := mpi.NewWorld(n, mpi.WithDeadline(30*time.Second), mpi.WithHook(plan.Hook()))
		if err != nil {
			return false
		}
		var mu sync.Mutex
		blocks := map[int][]float64{}
		res, err := w.Run(func(p *mpi.Proc) error {
			r, err := Run(p, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			blocks[p.Rank()] = r.Block
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Plateau initial condition: values must stay within [1, n].
		for rank, rr := range res.Ranks {
			if rr.Killed {
				continue
			}
			if rr.Err != nil || !rr.Finished {
				t.Logf("seed %d: rank %d %+v", seed, rank, rr)
				return false
			}
			for i, v := range blocks[rank] {
				if math.IsNaN(v) || v < 1-1e-9 || v > float64(n)+1e-9 {
					t.Logf("seed %d: rank %d cell %d out of bounds: %v", seed, rank, i, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
